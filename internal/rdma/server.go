package rdma

import (
	"uniaddr/internal/mem"
	"uniaddr/internal/sim"
)

// Server is a node-local communication server: a dedicated core that
// services software fetch-and-add requests for every process on its
// node (paper §6: "the fetch-and-add implementation reserves a
// processing core within a node in advance and uses it as a
// communication server"). With one server per 16-core node, only 15
// cores per node remain for computation — the cluster package accounts
// for this when building machines.
type Server struct {
	proc    *sim.Proc
	queue   []*faaRequest
	handled uint64
}

type faaRequest struct {
	fab    *Fabric
	target int
	addr   mem.VA
	delta  uint64
	from   *sim.Proc
	scale  float64 // intra-node latency factor requester→target
	old    uint64
}

// NewServer spawns the server process on eng. The server idles
// (blocked, consuming no events) until a request arrives.
func NewServer(eng *sim.Engine, name string) *Server {
	s := &Server{}
	s.proc = eng.Spawn(name, s.run)
	return s
}

// Proc returns the server's simulated process.
func (s *Server) Proc() *sim.Proc { return s.proc }

// Handled returns the number of requests serviced.
func (s *Server) Handled() uint64 { return s.handled }

// request is called from the requesting proc's goroutine. It models the
// full software FAA round trip: the request arrives at the server after
// a WRITE-with-notice latency, waits for the server core, is applied
// (ServerHandling cycles), and the reply returns after a WRITE latency.
// The caller blocks for the whole round trip and receives the old value.
func (s *Server) request(p *sim.Proc, f *Fabric, scale float64, target int, addr mem.VA, delta uint64) uint64 {
	req := &faaRequest{fab: f, target: target, addr: addr, delta: delta, from: p, scale: scale}
	reqLat := scaleLat(f.params.NoticeLatency(16), scale)
	eng := p.Engine()
	eng.After(reqLat, func() {
		s.queue = append(s.queue, req)
		if s.proc.Blocked() {
			eng.UnblockProc(s.proc, 0)
		}
	})
	p.Block()
	return req.old
}

// run is the server loop: pop a request, spend the handling cost, apply
// the atomic, send the reply.
func (s *Server) run(p *sim.Proc) {
	for {
		if len(s.queue) == 0 {
			p.Block()
			continue
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		p.Advance(req.fab.params.ServerHandling)
		req.old = req.fab.applyFAA(req.target, req.addr, req.delta)
		s.handled++
		p.Unblock(req.from, scaleLat(req.fab.params.WriteLatency(8), req.scale))
	}
}
