// Package rdma simulates a one-sided communication fabric in the style
// of Fujitsu Tofu (the FX10 interconnect used in the paper).
//
// The fabric connects the simulated processes' address spaces
// (internal/mem). Remote READ and WRITE complete after a latency of
// base + size·perByte cycles and never involve the target CPU, exactly
// like hardware RDMA: the target's worker process keeps computing while
// its memory is read. Remote fetch-and-add is provided in two flavours:
//
//   - hardware: a single fabric round trip (ablation mode), and
//   - software: the paper's scheme (§6) — FX10 lacks remote atomics, so
//     one core per node runs a communication server; the request travels
//     as an "RDMA WRITE with remote notice", the server applies the
//     add and replies. The paper measures 9.8K cycles on average, which
//     the default latency parameters reproduce.
//
// Every remote access verifies that the target range lies in a pinned
// region, mirroring the hardware requirement that RDMA-accessible pages
// be registered and locked to physical memory (§4 item 3 is the reason
// iso-address cannot use RDMA: its stack area is too large to pin).
package rdma

import (
	"fmt"

	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/sim"
)

// Params are the fabric latency/cost parameters, in cycles. Defaults
// (see DefaultParams) are calibrated against the paper's FX10 numbers.
type Params struct {
	// ReadBase/WriteBase are the zero-byte latencies of READ and WRITE.
	ReadBase  uint64
	WriteBase uint64
	// CyclesPerByte converts payload size to transfer cycles
	// (~bandwidth). Applied to both READ and WRITE.
	CyclesPerByte float64
	// NoticeExtra is the additional cost of "RDMA WRITE with remote
	// notice" over a plain WRITE (the completion notification).
	NoticeExtra uint64
	// HardwareFAA selects the single-round-trip atomic (ablation). When
	// false, fetch-and-add goes through the node's software server.
	HardwareFAA bool
	// HardwareFAALatency is the hardware atomic latency.
	HardwareFAALatency uint64
	// ServerHandling is the comm server's per-request processing cost.
	ServerHandling uint64
	// LocalAtomic is the cost of a CPU atomic on node-local memory.
	LocalAtomic uint64
	// IntraNodeFactor scales READ/WRITE/FAA latencies when initiator
	// and target share a node (shared-memory shortcut). 1.0 — the
	// default, matching the paper's flat treatment — disables the
	// effect; values < 1 enable hierarchical-stealing experiments.
	IntraNodeFactor float64
	// FAATimeout bounds how long a software fetch-and-add waits for its
	// reply, in cycles. 0 (the default) waits forever — correct on a
	// lossless fabric. Under fault injection a dropped request notice
	// would otherwise wedge the initiator, so machines with a non-zero
	// comm-server drop rate must set this (core.NewMachine does).
	FAATimeout uint64
	// RetryBackoff / RetryBackoffCap shape the capped exponential
	// virtual-time backoff of the reliable (auto-retrying) endpoint
	// operations after an injected fault. Zero selects the defaults
	// (1000 / 131072 cycles). Irrelevant without an injector.
	RetryBackoff    uint64
	RetryBackoffCap uint64
}

// DefaultParams returns parameters calibrated to the paper's FX10
// measurements: small READ/WRITE ≈ 2.5–2.8K cycles (≈1.4–1.5 µs at
// 1.848 GHz), payload at ≈5 GB/s, and a software fetch-and-add of
// ≈9.8K cycles end to end (notice write + server handling + reply).
func DefaultParams() Params {
	return Params{
		ReadBase:           4200,
		WriteBase:          3700,
		CyclesPerByte:      0.37, // ≈5 GB/s at 1.848 GHz
		NoticeExtra:        400,
		HardwareFAA:        false,
		HardwareFAALatency: 4500,
		ServerHandling:     2000,
		LocalAtomic:        50,
		IntraNodeFactor:    1.0,
	}
}

// ReadLatency returns the model latency of an n-byte READ.
func (p Params) ReadLatency(n int) uint64 {
	return p.ReadBase + uint64(float64(n)*p.CyclesPerByte)
}

// WriteLatency returns the model latency of an n-byte WRITE.
func (p Params) WriteLatency(n int) uint64 {
	return p.WriteBase + uint64(float64(n)*p.CyclesPerByte)
}

// NoticeLatency returns the latency of an n-byte WRITE with remote
// notice.
func (p Params) NoticeLatency(n int) uint64 {
	return p.WriteLatency(n) + p.NoticeExtra
}

// SoftwareFAALatency returns the end-to-end model latency of a software
// fetch-and-add (request notice + handling + reply write), matching the
// paper's measured 9.8K-cycle average with the default parameters.
func (p Params) SoftwareFAALatency() uint64 {
	return p.NoticeLatency(16) + p.ServerHandling + p.WriteLatency(8)
}

// Stats counts fabric traffic. One Stats struct is kept per endpoint
// (attributed to the initiator).
type Stats struct {
	Reads, Writes, FAAs uint64
	BytesRead           uint64
	BytesWritten        uint64
	CyclesBlocked       uint64

	// Failure counters (all zero without an injector).
	InjectedFaults uint64 // remote ops aborted by the fault injector
	SpikeCycles    uint64 // extra latency injected into ops (spikes)
	Retries        uint64 // reliable-wrapper retries after faults
	FAATimeouts    uint64 // software FAAs that timed out awaiting a reply
}

// Merge adds q's counters into s.
func (s *Stats) Merge(q Stats) {
	s.Reads += q.Reads
	s.Writes += q.Writes
	s.FAAs += q.FAAs
	s.BytesRead += q.BytesRead
	s.BytesWritten += q.BytesWritten
	s.CyclesBlocked += q.CyclesBlocked
	s.InjectedFaults += q.InjectedFaults
	s.SpikeCycles += q.SpikeCycles
	s.Retries += q.Retries
	s.FAATimeouts += q.FAATimeouts
}

// Fabric is the interconnect: a set of endpoints, one per simulated
// process, plus one communication server per node when software
// fetch-and-add is in use.
type Fabric struct {
	eng      *sim.Engine
	params   Params
	eps      []*Endpoint
	injector Injector
}

// NewFabric creates a fabric on the given engine.
func NewFabric(eng *sim.Engine, params Params) *Fabric {
	return &Fabric{eng: eng, params: params}
}

// Params returns the fabric parameters.
func (f *Fabric) Params() Params { return f.params }

// AddEndpoint registers a process address space with the fabric and
// returns its endpoint. Endpoint ranks are dense in registration order
// and must match the scheduler's process ranks.
func (f *Fabric) AddEndpoint(space *mem.AddressSpace) *Endpoint {
	ep := &Endpoint{fab: f, rank: len(f.eps), space: space}
	f.eps = append(f.eps, ep)
	return ep
}

// Endpoint returns the endpoint with the given rank.
func (f *Fabric) Endpoint(rank int) *Endpoint { return f.eps[rank] }

// NumEndpoints returns the number of registered endpoints.
func (f *Fabric) NumEndpoints() int { return len(f.eps) }

// Endpoint is one process's attachment to the fabric.
type Endpoint struct {
	fab    *Fabric
	rank   int
	node   int
	space  *mem.AddressSpace
	server *Server // the node-local comm server handling software FAA
	stats  Stats
	log    *obs.WorkerLog // nil unless observability is on (nil-safe)
}

// SetNode assigns the endpoint to a node for intra-node latency
// scaling.
func (ep *Endpoint) SetNode(n int) { ep.node = n }

// Node returns the endpoint's node id.
func (ep *Endpoint) Node() int { return ep.node }

// scaleTo returns the latency multiplier for traffic to target.
func (ep *Endpoint) scaleTo(target int) float64 {
	f := ep.fab.params.IntraNodeFactor
	if f <= 0 || f >= 1 {
		return 1
	}
	if ep.fab.eps[target].node == ep.node {
		return f
	}
	return 1
}

func scaleLat(lat uint64, f float64) uint64 {
	if f == 1 {
		return lat
	}
	return uint64(float64(lat) * f)
}

// Rank returns the endpoint's dense id.
func (ep *Endpoint) Rank() int { return ep.rank }

// Space returns the address space behind the endpoint.
func (ep *Endpoint) Space() *mem.AddressSpace { return ep.space }

// Stats returns a snapshot of the endpoint's traffic counters.
//
// The snapshot is only coherent at quiescence: while the simulation is
// running, counters are bumped before the op's latency elapses, so a
// mid-run read (from an Engine.After callback, say) can see an op
// counted whose bytes never land. Read it after the engine's Run
// returns, or use StatsAtQuiescence to have that checked.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// StatsAtQuiescence returns the traffic counters, panicking if the
// simulation is still running (when a coherent snapshot cannot be
// guaranteed).
func (ep *Endpoint) StatsAtQuiescence() Stats {
	if ep.fab.eng.Running() {
		panic("rdma: StatsAtQuiescence called while the simulation is running")
	}
	return ep.stats
}

// SetLog attaches an observability log; every subsequent remote op the
// endpoint initiates is recorded into it (issue time, latency, bytes,
// target, injected-failure flag). A nil log disables recording.
func (ep *Endpoint) SetLog(l *obs.WorkerLog) { ep.log = l }

// logOp records one fabric op into the attached log, marking injected
// failures.
func (ep *Endpoint) logOp(k obs.Kind, start, lat uint64, bytes, target int, failed bool) {
	if ep.log == nil {
		return
	}
	var fl uint8
	if failed {
		fl = obs.FFailed
	}
	ep.log.EmitFlags(k, start, lat, uint64(bytes), 0, target, fl)
}

// SetServer attaches the node-local communication server that handles
// software fetch-and-add requests targeting this endpoint's memory.
func (ep *Endpoint) SetServer(s *Server) { ep.server = s }

// pinnedSlice resolves [va, va+n) in the endpoint's space and checks the
// region is pinned (RDMA-registered).
func (ep *Endpoint) pinnedSlice(va mem.VA, n uint64) []byte {
	r, err := ep.space.Lookup(va, n)
	if err != nil {
		panic(fmt.Sprintf("rdma: rank %d: %v", ep.rank, err))
	}
	if !r.Pinned {
		panic(fmt.Sprintf("rdma: rank %d: remote access to unpinned region %q at %#x", ep.rank, r.Name, va))
	}
	b, err := ep.space.Slice(va, n)
	if err != nil {
		panic(err)
	}
	return b
}

// inject consults the fabric's injector for a remote op, returning the
// extra (spike) latency and whether the op must fail. Local loopback
// (target == own rank) is never injected: the NIC is not involved.
func (ep *Endpoint) inject(op OpKind, target, bytes int) (uint64, bool) {
	inj := ep.fab.injector
	if inj == nil || target == ep.rank {
		return 0, false
	}
	extra, fail := inj.Decide(op, ep.rank, target, bytes, ep.fab.eng.Now())
	if extra > 0 {
		ep.stats.SpikeCycles += extra
	}
	if fail {
		ep.stats.InjectedFaults++
	}
	return extra, fail
}

// retryBackoff parks p for the attempt-th capped exponential backoff
// delay of a reliable wrapper (virtual time, deterministic).
func (ep *Endpoint) retryBackoff(p *sim.Proc, attempt int) {
	base, limit := ep.fab.params.RetryBackoff, ep.fab.params.RetryBackoffCap
	if base == 0 {
		base = 1000
	}
	if limit == 0 {
		limit = 1 << 17
	}
	d := limit
	if attempt < 63 {
		if d = base << uint(attempt); d > limit {
			d = limit
		}
	}
	ep.stats.Retries++
	ep.stats.CyclesBlocked += d
	start := p.Now()
	p.Advance(d)
	if ep.log != nil {
		ep.log.Emit(obs.KNetRetry, start, d, uint64(attempt+1), 0, -1)
	}
}

// TryRead performs a one-sided READ of len(buf) bytes from (target,
// raddr) into buf. p blocks for the model latency; the remote bytes are
// sampled at completion time. The target region must be pinned. Under
// fault injection the READ may fail (buf is then untouched) or complete
// late.
func (ep *Endpoint) TryRead(p *sim.Proc, target int, raddr mem.VA, buf []byte) error {
	lat := scaleLat(ep.fab.params.ReadLatency(len(buf)), ep.scaleTo(target))
	extra, fail := ep.inject(OpRead, target, len(buf))
	lat += extra
	ep.stats.Reads++
	ep.stats.BytesRead += uint64(len(buf))
	ep.stats.CyclesBlocked += lat
	start := p.Now()
	p.Advance(lat)
	ep.logOp(obs.KRead, start, lat, len(buf), target, fail)
	if fail {
		return fmt.Errorf("%w: READ rank %d → rank %d", ErrInjected, ep.rank, target)
	}
	src := ep.fab.eps[target].pinnedSlice(raddr, uint64(len(buf)))
	copy(buf, src)
	return nil
}

// Read is the reliable form of TryRead: it retries with capped
// exponential virtual-time backoff until the READ completes. Safe
// because reads are idempotent and injected failures have no remote
// effect. Identical to TryRead when no injector is attached.
func (ep *Endpoint) Read(p *sim.Proc, target int, raddr mem.VA, buf []byte) {
	for attempt := 0; ; attempt++ {
		if err := ep.TryRead(p, target, raddr, buf); err == nil {
			return
		}
		ep.retryBackoff(p, attempt)
	}
}

// TryWrite performs a one-sided WRITE of buf to (target, raddr). The
// bytes land at completion time; a failed WRITE lands nothing.
func (ep *Endpoint) TryWrite(p *sim.Proc, target int, raddr mem.VA, buf []byte) error {
	lat := scaleLat(ep.fab.params.WriteLatency(len(buf)), ep.scaleTo(target))
	extra, fail := ep.inject(OpWrite, target, len(buf))
	lat += extra
	ep.stats.Writes++
	ep.stats.BytesWritten += uint64(len(buf))
	ep.stats.CyclesBlocked += lat
	start := p.Now()
	p.Advance(lat)
	ep.logOp(obs.KWrite, start, lat, len(buf), target, fail)
	if fail {
		return fmt.Errorf("%w: WRITE rank %d → rank %d", ErrInjected, ep.rank, target)
	}
	dst := ep.fab.eps[target].pinnedSlice(raddr, uint64(len(buf)))
	copy(dst, buf)
	return nil
}

// Write is the reliable form of TryWrite (retry until success).
func (ep *Endpoint) Write(p *sim.Proc, target int, raddr mem.VA, buf []byte) {
	for attempt := 0; ; attempt++ {
		if err := ep.TryWrite(p, target, raddr, buf); err == nil {
			return
		}
		ep.retryBackoff(p, attempt)
	}
}

// TryReadToVA is TryRead with a pinned local destination region (the
// form used for stack transfer into the uni-address region, §5.3). A
// failed READ leaves the destination untouched.
func (ep *Endpoint) TryReadToVA(p *sim.Proc, target int, raddr mem.VA, laddr mem.VA, n uint64) error {
	lat := scaleLat(ep.fab.params.ReadLatency(int(n)), ep.scaleTo(target))
	extra, fail := ep.inject(OpRead, target, int(n))
	lat += extra
	ep.stats.Reads++
	ep.stats.BytesRead += n
	ep.stats.CyclesBlocked += lat
	start := p.Now()
	p.Advance(lat)
	ep.logOp(obs.KRead, start, lat, int(n), target, fail)
	if fail {
		return fmt.Errorf("%w: READ rank %d → rank %d (%d bytes)", ErrInjected, ep.rank, target, n)
	}
	src := ep.fab.eps[target].pinnedSlice(raddr, n)
	dst := ep.pinnedSlice(laddr, n)
	copy(dst, src)
	return nil
}

// ReadToVA is the reliable form of TryReadToVA (retry until success).
func (ep *Endpoint) ReadToVA(p *sim.Proc, target int, raddr mem.VA, laddr mem.VA, n uint64) {
	for attempt := 0; ; attempt++ {
		if err := ep.TryReadToVA(p, target, raddr, laddr, n); err == nil {
			return
		}
		ep.retryBackoff(p, attempt)
	}
}

// TryReadU64 reads a little-endian uint64 at (target, raddr).
func (ep *Endpoint) TryReadU64(p *sim.Proc, target int, raddr mem.VA) (uint64, error) {
	var b [8]byte
	if err := ep.TryRead(p, target, raddr, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// ReadU64 reads a little-endian uint64 at (target, raddr), reliably.
func (ep *Endpoint) ReadU64(p *sim.Proc, target int, raddr mem.VA) uint64 {
	var b [8]byte
	ep.Read(p, target, raddr, b[:])
	return leU64(b[:])
}

// TryWriteU64 writes a little-endian uint64 to (target, raddr).
func (ep *Endpoint) TryWriteU64(p *sim.Proc, target int, raddr mem.VA, v uint64) error {
	var b [8]byte
	putLeU64(b[:], v)
	return ep.TryWrite(p, target, raddr, b[:])
}

// WriteU64 writes a little-endian uint64 to (target, raddr), reliably.
func (ep *Endpoint) WriteU64(p *sim.Proc, target int, raddr mem.VA, v uint64) {
	var b [8]byte
	putLeU64(b[:], v)
	ep.Write(p, target, raddr, b[:])
}

// TryFetchAdd atomically adds delta to the uint64 at (target, raddr)
// and returns the previous value. With HardwareFAA it is a single
// fabric atomic; otherwise the request is serviced by the target node's
// communication server (the paper's software scheme). If target is the
// caller's own rank the operation is a local CPU atomic and never
// fails. A returned error guarantees the add was NOT applied
// (fail-before-effect), so retrying is safe.
func (ep *Endpoint) TryFetchAdd(p *sim.Proc, target int, raddr mem.VA, delta uint64) (uint64, error) {
	if target == ep.rank {
		p.Advance(ep.fab.params.LocalAtomic)
		return ep.fab.applyFAA(target, raddr, delta), nil
	}
	ep.stats.FAAs++
	if ep.fab.params.HardwareFAA {
		lat := scaleLat(ep.fab.params.HardwareFAALatency, ep.scaleTo(target))
		extra, fail := ep.inject(OpFAA, target, 8)
		lat += extra
		ep.stats.CyclesBlocked += lat
		start := p.Now()
		p.Advance(lat)
		ep.logOp(obs.KFAA, start, lat, 8, target, fail)
		if fail {
			return 0, fmt.Errorf("%w: FAA rank %d → rank %d", ErrInjected, ep.rank, target)
		}
		return ep.fab.applyFAA(target, raddr, delta), nil
	}
	srv := ep.fab.eps[target].server
	if srv == nil {
		panic(fmt.Sprintf("rdma: rank %d has no comm server for software FAA", target))
	}
	start := p.Now()
	old, err := srv.request(p, ep.fab, ep.scaleTo(target), ep.rank, target, raddr, delta)
	rtt := p.Now() - start
	ep.stats.CyclesBlocked += rtt
	if err != nil {
		ep.stats.FAATimeouts++
	}
	ep.logOp(obs.KFAA, start, rtt, 8, target, err != nil)
	if err == nil && ep.log != nil {
		// The software round trip (notice + server handling + reply) is
		// the paper's measured 9.8K-cycle quantity — histogram it.
		ep.log.Recorder().FAARoundTrip.Record(rtt)
	}
	return old, err
}

// FetchAdd is the reliable form of TryFetchAdd (retry until success —
// safe because failed FAAs were never applied).
func (ep *Endpoint) FetchAdd(p *sim.Proc, target int, raddr mem.VA, delta uint64) uint64 {
	for attempt := 0; ; attempt++ {
		old, err := ep.TryFetchAdd(p, target, raddr, delta)
		if err == nil {
			return old
		}
		ep.retryBackoff(p, attempt)
	}
}

// applyFAA performs the read-modify-write on the target memory. It must
// run in engine context (atomically at the current instant).
func (f *Fabric) applyFAA(target int, raddr mem.VA, delta uint64) uint64 {
	b := f.eps[target].pinnedSlice(raddr, 8)
	old := leU64(b)
	putLeU64(b, old+delta)
	return old
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
