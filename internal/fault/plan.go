package fault

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Op enumerates the operations a Plan is consulted about on the real
// backends.
type Op uint8

const (
	// OpStealClaim is the thief-side deque claim (the FAA lock plus the
	// top bump — the paper's one-sided claim sequence).
	OpStealClaim Op = iota
	// OpStealCopy is the thief-side cross-arena frame transfer, the
	// stand-in for the RDMA READ of the stolen stack.
	OpStealCopy
	// OpCtl is one dist control-plane message send (hello, start, bye
	// or ack).
	OpCtl
	opCount
)

// PlanStats is a snapshot of a Plan's decision counters.
type PlanStats struct {
	Decisions uint64 // consultations
	Faults    uint64 // steal claim/copy ops failed
	Delays    uint64 // stalls injected (steal or ctl)
	DelayNS   uint64 // total injected stall
	Drops     uint64 // ctl messages silently discarded
	Truncs    uint64 // ctl messages truncated + connection severed
}

// CtlDecision is the fate of one control-plane message send.
type CtlDecision struct {
	Delay time.Duration
	Drop  bool // discard silently: the peer must time out and retry
	Trunc bool // deliver a prefix, then sever the connection
}

// Plan is the backend-neutral fault schedule for the real backends.
//
// The sim Injector draws from one RNG stream, which is deterministic
// only because the sequential simulator consults it in one global
// order. Real backends have no such order — workers race — so the Plan
// derives every decision as a PURE HASH of (seed, op, actor, target,
// n), where n counts that edge's prior consultations (one atomic
// counter per (op, from, target) edge). Each edge therefore sees a
// deterministic decision SEQUENCE for a given seed no matter how the
// schedules of different workers interleave, which keeps chaos
// findings reproducible in aggregate: the same seed yields the same
// per-edge fault pattern, even though the global interleaving varies.
//
// A Plan is consulted concurrently from every worker; all state is
// atomic and there is no locking on the decision path (two uncontended
// fetch-adds plus a few multiplies).
type Plan struct {
	cfg     Config
	workers int
	seq     []atomic.Uint64 // per-(op, from, target) consultation counters

	decisions atomic.Uint64
	faults    atomic.Uint64
	delays    atomic.Uint64
	delayNS   atomic.Uint64
	drops     atomic.Uint64
	truncs    atomic.Uint64
}

// NewPlan builds the deterministic schedule for a run of `workers`
// workers. A Config with no real-backend knob set returns (nil, nil):
// the nil plan is the free fast path, exactly like the sim's nil
// injector.
func NewPlan(cfg Config, workers int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.PlanEnabled() && !cfg.CtlEnabled() {
		return nil, nil
	}
	if workers < 1 {
		return nil, fmt.Errorf("fault: plan for %d workers", workers)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Plan{
		cfg:     cfg,
		workers: workers,
		seq:     make([]atomic.Uint64, int(opCount)*workers*workers),
	}, nil
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// Stats returns a snapshot of the decision counters.
func (p *Plan) Stats() PlanStats {
	return PlanStats{
		Decisions: p.decisions.Load(),
		Faults:    p.faults.Load(),
		Delays:    p.delays.Load(),
		DelayNS:   p.delayNS.Load(),
		Drops:     p.drops.Load(),
		Truncs:    p.truncs.Load(),
	}
}

// draw advances the (op, from, target) edge's sequence counter and
// returns the hash that seeds this consultation's sub-draws.
func (p *Plan) draw(op Op, from, target int) uint64 {
	i := (int(op)*p.workers+from)*p.workers + target
	n := p.seq[i].Add(1) - 1
	h := splitmix64(p.cfg.Seed ^ splitmix64(uint64(op)<<40|uint64(from)<<20|uint64(target)))
	return splitmix64(h + n*0x9e3779b97f4a7c15)
}

// u01 maps a hash to a uniform float in [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// StealClaim decides the fate of one thief→victim claim attempt:
// an injected stall (0 = none) and whether the claim op is lost.
// Implements sched.StealInjector.
func (p *Plan) StealClaim(thief, victim int) (time.Duration, bool) {
	return p.stealDecision(OpStealClaim, thief, victim, p.cfg.StealClaimFailProb)
}

// StealCopy decides the fate of one thief→victim frame transfer.
// Implements sched.StealInjector.
func (p *Plan) StealCopy(thief, victim int) (time.Duration, bool) {
	return p.stealDecision(OpStealCopy, thief, victim, p.cfg.StealCopyFailProb)
}

func (p *Plan) stealDecision(op Op, thief, victim int, failProb float64) (time.Duration, bool) {
	p.decisions.Add(1)
	h := p.draw(op, thief, victim)
	var stall time.Duration
	if p.cfg.StealDelayProb > 0 && u01(h) < p.cfg.StealDelayProb {
		span := p.cfg.StealDelayMax - p.cfg.StealDelayMin
		stall = p.cfg.StealDelayMin
		if span > 0 {
			stall += time.Duration(splitmix64(h) % uint64(span+1))
		}
		p.delays.Add(1)
		p.delayNS.Add(uint64(stall))
	}
	fail := failProb > 0 && u01(splitmix64(h^0xd6e8feb86659fd93)) < failProb
	if fail {
		p.faults.Add(1)
	}
	return stall, fail
}

// CtlSend decides the fate of one control-plane message sent by (or
// to) the given rank. Safe on a nil plan (no injection). Because every
// retry advances the edge's sequence counter, a retried message
// re-draws — any positive success probability converges.
func (p *Plan) CtlSend(rank int) CtlDecision {
	if p == nil || !p.cfg.CtlEnabled() {
		return CtlDecision{}
	}
	p.decisions.Add(1)
	h := p.draw(OpCtl, rank%p.workers, 0)
	var dec CtlDecision
	if p.cfg.CtlDelayProb > 0 && u01(h) < p.cfg.CtlDelayProb {
		dec.Delay = p.cfg.CtlDelay
		p.delays.Add(1)
		p.delayNS.Add(uint64(dec.Delay))
	}
	switch {
	case p.cfg.CtlTruncProb > 0 && u01(splitmix64(h^0xa0761d6478bd642f)) < p.cfg.CtlTruncProb:
		dec.Trunc = true
		p.truncs.Add(1)
	case p.cfg.CtlDropProb > 0 && u01(splitmix64(h^0xe7037ed1a0b428db)) < p.cfg.CtlDropProb:
		dec.Drop = true
		p.drops.Add(1)
	}
	return dec
}
