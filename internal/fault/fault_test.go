package fault

import (
	"testing"

	"uniaddr/internal/rdma"
)

func TestNewRejectsDisabledConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestValidateRejectsBadKnobs(t *testing.T) {
	bad := []Config{
		{ReadFailProb: -0.1},
		{WriteFailProb: 1.0},
		{FAAFailProb: 1.5},
		{ServerDropProb: -1},
		{SpikeProb: 1},
		{SpikeProb: 0.1, SpikeMinCycles: 100, SpikeMaxCycles: 50},
		{BrownoutDuration: 100, BrownoutPeriod: 100},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config %+v validated", i, c)
		}
	}
	good := Config{ReadFailProb: 0.5, SpikeProb: 0.1, SpikeMinCycles: 10, SpikeMaxCycles: 10,
		BrownoutDuration: 10, BrownoutPeriod: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// TestDecideDeterministic: two injectors built from the same config
// must produce identical decision streams for identical call sequences.
func TestDecideDeterministic(t *testing.T) {
	cfg := Config{
		Seed:          99,
		ReadFailProb:  0.2,
		WriteFailProb: 0.1,
		FAAFailProb:   0.05,
		SpikeProb:     0.3, SpikeMinCycles: 100, SpikeMaxCycles: 900,
		BrownoutDuration: 500,
	}
	a, b := MustNew(cfg), MustNew(cfg)
	ops := []rdma.OpKind{rdma.OpRead, rdma.OpWrite, rdma.OpFAA, rdma.OpNotice}
	for i := 0; i < 10_000; i++ {
		op := ops[i%len(ops)]
		target := i % 7
		now := uint64(i) * 131
		e1, f1 := a.Decide(op, 0, target, 64, now)
		e2, f2 := b.Decide(op, 0, target, 64, now)
		if e1 != e2 || f1 != f2 {
			t.Fatalf("call %d diverged: (%d,%v) vs (%d,%v)", i, e1, f1, e2, f2)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Decisions != 10_000 {
		t.Fatalf("decisions %d, want 10000", a.Stats().Decisions)
	}
}

// TestBrownoutWindows: with only brown-outs configured the failure
// pattern is a pure function of (target, now) — the duration fraction
// of every period fails, windows differ between targets, and no RNG
// state is consumed (two scans give identical answers).
func TestBrownoutWindows(t *testing.T) {
	cfg := Config{Seed: 5, BrownoutDuration: 1_000, BrownoutPeriod: 10_000}
	in := MustNew(cfg)
	failsPerTarget := make(map[int]int)
	for target := 0; target < 4; target++ {
		for now := uint64(0); now < 10_000; now++ {
			if _, fail := in.Decide(rdma.OpRead, 9, target, 8, now); fail {
				failsPerTarget[target]++
			}
		}
	}
	firstDark := make(map[int]uint64)
	for target := 0; target < 4; target++ {
		// Exactly duration cycles of each period are dark.
		if got := failsPerTarget[target]; got != 1_000 {
			t.Errorf("target %d: %d dark cycles per period, want 1000", target, got)
		}
		for now := uint64(0); now < 10_000; now++ {
			if _, fail := in.Decide(rdma.OpRead, 9, target, 8, now); fail {
				firstDark[target] = now
				break
			}
		}
	}
	// Windows are staggered: not every target starts its window at the
	// same phase.
	same := true
	for target := 1; target < 4; target++ {
		if firstDark[target] != firstDark[0] {
			same = false
		}
	}
	if same {
		t.Errorf("all brown-out windows share phase %d — staggering broken", firstDark[0])
	}
	// 1000 per target in the full scan, plus the single hit at which
	// each first-dark scan stopped.
	if got := in.Stats().Brownouts; got != 4*1_000+4 {
		t.Errorf("brownout stat %d, want %d", got, 4*1_000+4)
	}
}

// TestSpikeRange: injected spike delays stay inside the configured
// bounds and are counted.
func TestSpikeRange(t *testing.T) {
	cfg := Config{Seed: 3, SpikeProb: 0.5, SpikeMinCycles: 200, SpikeMaxCycles: 300}
	in := MustNew(cfg)
	spikes := 0
	for i := 0; i < 5_000; i++ {
		extra, fail := in.Decide(rdma.OpWrite, 0, 1, 8, uint64(i))
		if fail {
			t.Fatalf("call %d failed with no failure source configured", i)
		}
		if extra != 0 {
			if extra < 200 || extra > 300 {
				t.Fatalf("spike %d outside [200, 300]", extra)
			}
			spikes++
		}
	}
	if spikes < 2_000 || spikes > 3_000 {
		t.Errorf("%d spikes out of 5000 at p=0.5", spikes)
	}
	if got := in.Stats().Spikes; got != uint64(spikes) {
		t.Errorf("spike stat %d, want %d", got, spikes)
	}
}

// TestPeriodDefault: BrownoutPeriod 0 defaults to 8x the duration.
func TestPeriodDefault(t *testing.T) {
	in := MustNew(Config{BrownoutDuration: 500})
	fails := 0
	for now := uint64(0); now < 4_000; now++ {
		if _, fail := in.Decide(rdma.OpRead, 0, 1, 8, now); fail {
			fails++
		}
	}
	if fails != 500 {
		t.Fatalf("%d dark cycles in one default period, want 500", fails)
	}
}
