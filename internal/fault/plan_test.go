package fault

import (
	"testing"
	"time"
)

func planCfg() Config {
	return Config{
		Seed:               42,
		StealClaimFailProb: 0.1,
		StealCopyFailProb:  0.05,
		StealDelayProb:     0.2,
		StealDelayMin:      10 * time.Microsecond,
		StealDelayMax:      100 * time.Microsecond,
		CtlDropProb:        0.2,
		CtlTruncProb:       0.1,
		CtlDelayProb:       0.1,
		CtlDelay:           time.Millisecond,
	}
}

func TestPlanNilWhenDisabled(t *testing.T) {
	p, err := NewPlan(Config{Seed: 7, ReadFailProb: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("sim-only knobs built a plan: %+v", p)
	}
	// CtlSend on a nil plan must be the safe no-op fast path.
	if dec := p.CtlSend(1); dec != (CtlDecision{}) {
		t.Fatalf("nil plan CtlSend = %+v, want zero", dec)
	}
}

func TestPlanValidates(t *testing.T) {
	bad := []Config{
		{StealClaimFailProb: 1.5},
		{StealCopyFailProb: -0.1},
		{StealDelayProb: 0.1, StealDelayMin: -time.Second},
		{StealDelayProb: 0.1, StealDelayMin: time.Second, StealDelayMax: time.Millisecond},
		{CtlDropProb: 2},
		{CtlDelayProb: 0.1, CtlDelay: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewPlan(cfg, 4); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
	if _, err := NewPlan(planCfg(), 0); err == nil {
		t.Error("0 workers accepted")
	}
}

// Determinism: the per-edge decision SEQUENCE is a pure function of
// (seed, op, thief, victim) — two plans with the same seed agree on
// every draw regardless of the interleaving of other edges.
func TestPlanDeterministicPerEdge(t *testing.T) {
	a, _ := NewPlan(planCfg(), 4)
	b, _ := NewPlan(planCfg(), 4)
	// Perturb b's other edges first: edge (1→2) draws must not shift.
	for i := 0; i < 100; i++ {
		b.StealClaim(2, 3)
		b.StealCopy(3, 0)
		b.CtlSend(1)
	}
	for i := 0; i < 500; i++ {
		as, af := a.StealClaim(1, 2)
		bs, bf := b.StealClaim(1, 2)
		if as != bs || af != bf {
			t.Fatalf("draw %d: plan a (%v,%v) != plan b (%v,%v)", i, as, af, bs, bf)
		}
	}
}

func TestPlanSeedChangesSchedule(t *testing.T) {
	cfg2 := planCfg()
	cfg2.Seed = 43
	a, _ := NewPlan(planCfg(), 4)
	b, _ := NewPlan(cfg2, 4)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		_, af := a.StealClaim(1, 2)
		_, bf := b.StealClaim(1, 2)
		if af == bf {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 42 and 43 produced identical fault schedules")
	}
}

func TestPlanRatesRoughlyHonoured(t *testing.T) {
	p, _ := NewPlan(planCfg(), 4)
	const n = 20000
	fails, delays := 0, 0
	for i := 0; i < n; i++ {
		stall, fail := p.StealClaim(0, 1)
		if fail {
			fails++
		}
		if stall > 0 {
			delays++
			if stall < 10*time.Microsecond || stall > 100*time.Microsecond {
				t.Fatalf("draw %d: stall %v outside [10µs, 100µs]", i, stall)
			}
		}
	}
	if got := float64(fails) / n; got < 0.07 || got > 0.13 {
		t.Errorf("claim-fail rate %.3f, want ≈0.1", got)
	}
	if got := float64(delays) / n; got < 0.15 || got > 0.25 {
		t.Errorf("delay rate %.3f, want ≈0.2", got)
	}
	st := p.Stats()
	if st.Decisions != n || st.Faults != uint64(fails) || st.Delays != uint64(delays) {
		t.Errorf("stats %+v disagree with observed fails=%d delays=%d", st, fails, delays)
	}
}

func TestPlanCtlDecisions(t *testing.T) {
	p, _ := NewPlan(planCfg(), 4)
	const n = 20000
	drops, truncs, delays := 0, 0, 0
	for i := 0; i < n; i++ {
		dec := p.CtlSend(1)
		if dec.Drop && dec.Trunc {
			t.Fatal("drop and trunc both set on one decision")
		}
		if dec.Drop {
			drops++
		}
		if dec.Trunc {
			truncs++
		}
		if dec.Delay > 0 {
			delays++
			if dec.Delay != time.Millisecond {
				t.Fatalf("ctl delay %v, want 1ms", dec.Delay)
			}
		}
	}
	if got := float64(truncs) / n; got < 0.07 || got > 0.13 {
		t.Errorf("trunc rate %.3f, want ≈0.1", got)
	}
	// Drop draws are independent of trunc; observed drop rate is
	// (1-trunc)*0.2 ≈ 0.18.
	if got := float64(drops) / n; got < 0.14 || got > 0.22 {
		t.Errorf("drop rate %.3f, want ≈0.18", got)
	}
	_ = delays
}

func TestKnobClassification(t *testing.T) {
	cfg := planCfg()
	cfg.ReadFailProb = 0.01
	cfg.SpikeProb = 0.01
	cfg.SpikeMinCycles = 1
	cfg.SpikeMaxCycles = 2
	sim, plan, ctl := cfg.SimKnobs(), cfg.PlanKnobs(), cfg.CtlKnobs()
	want := func(list []string, name string) {
		for _, k := range list {
			if k == name {
				return
			}
		}
		t.Errorf("knob %s missing from %v", name, list)
	}
	want(sim, "ReadFailProb")
	want(sim, "SpikeProb")
	want(plan, "StealClaimFailProb")
	want(plan, "StealDelayProb")
	want(ctl, "CtlDropProb")
	want(ctl, "CtlDelay")
	if len(sim) != 4 || len(plan) != 5 || len(ctl) != 4 {
		t.Errorf("knob counts sim=%d plan=%d ctl=%d: %v %v %v", len(sim), len(plan), len(ctl), sim, plan, ctl)
	}
	var zero Config
	if zero.PlanEnabled() || zero.CtlEnabled() {
		t.Error("zero config reports enabled")
	}
	if !cfg.PlanEnabled() || !cfg.CtlEnabled() {
		t.Error("configured plan/ctl knobs report disabled")
	}
}
