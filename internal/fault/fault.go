// Package fault provides deterministic fault injection for the
// simulated RDMA fabric. An Injector implements rdma.Injector: the
// fabric consults it before every remote operation and the injector
// decides — from its own seeded RNG stream and the virtual clock —
// whether the op completes, completes late (latency spike), or fails.
//
// Determinism: the simulation engine is sequential, so the injector is
// consulted in a globally deterministic order; with a fixed Config
// (including Seed) every run reproduces the exact same fault pattern,
// making chaos findings replayable. All injected delays are virtual
// time, so injection never perturbs host-clock-dependent behaviour.
//
// The model is fail-before-effect (see internal/rdma/inject.go): a
// failed op had no effect on the target, which is what makes the
// runtime's retry policies sound.
package fault

import (
	"fmt"

	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

// Config are the injector knobs. The zero value disables injection
// entirely (Enabled() == false) and costs nothing.
type Config struct {
	// Seed seeds the injector's private RNG stream. Zero lets the
	// machine derive one from its simulation seed, so fault patterns
	// follow the run seed unless pinned explicitly.
	Seed uint64

	// Per-op failure probabilities in [0, 1): a failed READ/WRITE
	// completes after its model latency with no remote effect; a failed
	// hardware FAA is not applied.
	ReadFailProb  float64
	WriteFailProb float64
	FAAFailProb   float64

	// ServerDropProb drops the request notice of a software
	// fetch-and-add before it reaches the comm server; the initiator
	// times out (rdma.Params.FAATimeout) and must retry.
	ServerDropProb float64

	// Latency-spike distribution: with probability SpikeProb an op's
	// latency grows by a uniform draw from [SpikeMinCycles,
	// SpikeMaxCycles].
	SpikeProb      float64
	SpikeMinCycles uint64
	SpikeMaxCycles uint64

	// Endpoint brown-out windows: every BrownoutPeriod cycles each
	// endpoint goes dark for BrownoutDuration cycles — every remote op
	// *targeting* it fails while the window is open. Windows are
	// staggered per endpoint (a deterministic hash of Seed and rank), so
	// at most a few endpoints are dark at once. BrownoutDuration 0
	// disables; BrownoutPeriod 0 defaults to 8× the duration.
	BrownoutPeriod   uint64
	BrownoutDuration uint64
}

// Enabled reports whether any knob is set; a disabled Config must not
// be attached to a fabric (the nil injector fast path is free).
func (c Config) Enabled() bool {
	return c.ReadFailProb > 0 || c.WriteFailProb > 0 || c.FAAFailProb > 0 ||
		c.ServerDropProb > 0 || c.SpikeProb > 0 || c.BrownoutDuration > 0
}

// Validate rejects out-of-range knobs.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ReadFailProb", c.ReadFailProb},
		{"WriteFailProb", c.WriteFailProb},
		{"FAAFailProb", c.FAAFailProb},
		{"ServerDropProb", c.ServerDropProb},
		{"SpikeProb", c.SpikeProb},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1)", p.name, p.v)
		}
	}
	if c.SpikeMaxCycles < c.SpikeMinCycles {
		return fmt.Errorf("fault: SpikeMaxCycles %d < SpikeMinCycles %d", c.SpikeMaxCycles, c.SpikeMinCycles)
	}
	if c.BrownoutDuration > 0 && c.BrownoutPeriod > 0 && c.BrownoutDuration >= c.BrownoutPeriod {
		return fmt.Errorf("fault: BrownoutDuration %d >= BrownoutPeriod %d", c.BrownoutDuration, c.BrownoutPeriod)
	}
	return nil
}

// Stats counts the injector's decisions.
type Stats struct {
	Decisions   uint64 // remote ops consulted
	Faults      uint64 // ops failed (probability draws)
	Brownouts   uint64 // ops failed because the target was browned out
	NoticeDrops uint64 // software-FAA request notices dropped
	Spikes      uint64 // ops delayed
	SpikeCycles uint64 // total injected delay
}

// Injector is a seeded, sim-clock-driven rdma.Injector.
type Injector struct {
	cfg    Config
	rng    sim.RNG
	period uint64
	stats  Stats
}

// New builds an injector from cfg (which must be Enabled and valid).
func New(cfg Config) (*Injector, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("fault: config has no fault source enabled")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	period := cfg.BrownoutPeriod
	if cfg.BrownoutDuration > 0 && period == 0 {
		period = 8 * cfg.BrownoutDuration
	}
	return &Injector{cfg: cfg, rng: sim.NewRNG(cfg.Seed), period: period}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Injector {
	in, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return in
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns a snapshot of the decision counters.
func (in *Injector) Stats() Stats { return in.stats }

// splitmix64 is the stateless mixer used to stagger brown-out phases.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// brownedOut reports whether target's endpoint is inside its brown-out
// window at virtual time now. Pure function of (seed, target, now) —
// no RNG stream is consumed, so brown-outs do not shift the per-op
// probability draws.
func (in *Injector) brownedOut(target int, now uint64) bool {
	if in.cfg.BrownoutDuration == 0 {
		return false
	}
	phase := splitmix64(in.cfg.Seed^uint64(target)*0x2545f4914f6cdd1d) % in.period
	return (now+phase)%in.period < in.cfg.BrownoutDuration
}

// Decide implements rdma.Injector.
func (in *Injector) Decide(op rdma.OpKind, from, target, bytes int, now uint64) (uint64, bool) {
	in.stats.Decisions++
	var extra uint64
	if in.cfg.SpikeProb > 0 && in.rng.Float64() < in.cfg.SpikeProb {
		span := in.cfg.SpikeMaxCycles - in.cfg.SpikeMinCycles
		extra = in.cfg.SpikeMinCycles
		if span > 0 {
			extra += in.rng.Uint64() % (span + 1)
		}
		in.stats.Spikes++
		in.stats.SpikeCycles += extra
	}
	if in.brownedOut(target, now) {
		in.stats.Brownouts++
		return extra, true
	}
	var p float64
	switch op {
	case rdma.OpRead:
		p = in.cfg.ReadFailProb
	case rdma.OpWrite:
		p = in.cfg.WriteFailProb
	case rdma.OpFAA:
		p = in.cfg.FAAFailProb
	case rdma.OpNotice:
		p = in.cfg.ServerDropProb
	}
	if p > 0 && in.rng.Float64() < p {
		if op == rdma.OpNotice {
			in.stats.NoticeDrops++
		} else {
			in.stats.Faults++
		}
		return extra, true
	}
	return extra, false
}

var _ rdma.Injector = (*Injector)(nil)
