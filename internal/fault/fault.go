// Package fault provides deterministic fault injection for every
// backend. Two mechanisms share one Config:
//
//   - Injector (this file) implements rdma.Injector for the simulated
//     fabric: the sequential simulation engine consults it in a
//     globally deterministic order, so one seeded RNG stream suffices.
//     All injected delays are virtual time.
//   - Plan (plan.go) is the backend-neutral schedule for the REAL
//     backends (rt, dist), where no global consultation order exists:
//     every decision is a pure hash of (seed, op kind, actor, victim,
//     per-edge sequence number), so each edge sees a deterministic
//     fault sequence regardless of thread or process interleaving.
//     Injected delays are wall-clock.
//
// Both share the fail-before-effect model (see internal/rdma/inject.go
// and sched.StealInjector): a failed op had no effect on the target,
// which is what makes the runtime's retry policies sound. The one
// deliberate exception is the Plan's steal-copy fault, which fires
// AFTER the bytes moved — forcing the THE rollback path rather than a
// plain retry.
package fault

import (
	"fmt"
	"time"

	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

// Config are the injector knobs. The zero value disables injection
// entirely (Enabled() == false) and costs nothing.
type Config struct {
	// Seed seeds the injector's private RNG stream. Zero lets the
	// machine derive one from its simulation seed, so fault patterns
	// follow the run seed unless pinned explicitly.
	Seed uint64

	// Per-op failure probabilities in [0, 1): a failed READ/WRITE
	// completes after its model latency with no remote effect; a failed
	// hardware FAA is not applied.
	ReadFailProb  float64
	WriteFailProb float64
	FAAFailProb   float64

	// ServerDropProb drops the request notice of a software
	// fetch-and-add before it reaches the comm server; the initiator
	// times out (rdma.Params.FAATimeout) and must retry.
	ServerDropProb float64

	// Latency-spike distribution: with probability SpikeProb an op's
	// latency grows by a uniform draw from [SpikeMinCycles,
	// SpikeMaxCycles].
	SpikeProb      float64
	SpikeMinCycles uint64
	SpikeMaxCycles uint64

	// Endpoint brown-out windows: every BrownoutPeriod cycles each
	// endpoint goes dark for BrownoutDuration cycles — every remote op
	// *targeting* it fails while the window is open. Windows are
	// staggered per endpoint (a deterministic hash of Seed and rank), so
	// at most a few endpoints are dark at once. BrownoutDuration 0
	// disables; BrownoutPeriod 0 defaults to 8× the duration.
	BrownoutPeriod   uint64
	BrownoutDuration uint64

	// --- Backend-neutral steal knobs (rt + dist; see Plan) ------------

	// Per-phase steal failure probabilities in [0, 1), evaluated by a
	// deterministic per-seed Plan on the real backends. A claim failure
	// is fail-before-effect (the lost op never reached the victim's
	// deque, so a retry is sound); a copy failure fires after the frame
	// bytes transferred, forcing the thief through the THE rollback
	// (sched.Deque.StealAbort) so the victim keeps the thread.
	StealClaimFailProb float64
	StealCopyFailProb  float64

	// Wall-clock latency spikes on real-backend steals: with
	// probability StealDelayProb a steal phase stalls for a uniform
	// draw from [StealDelayMin, StealDelayMax] — the wall-clock
	// analogue of SpikeProb. A copy-phase stall holds the victim's
	// deque lock, which is exactly the ODP-page-fault-style stall the
	// THE protocol must tolerate.
	StealDelayProb float64
	StealDelayMin  time.Duration
	StealDelayMax  time.Duration

	// --- dist control-plane knobs -------------------------------------

	// Applied per control-plane message (hello/start/bye/ack) on the
	// dist backend. CtlDropProb silently discards the message (the peer
	// must time out and retry); CtlTruncProb writes a prefix of the
	// bytes and severs the connection; CtlDelayProb stalls the send by
	// CtlDelay first. Retries re-draw, so any positive success
	// probability converges in bounded attempts.
	CtlDropProb  float64
	CtlTruncProb float64
	CtlDelayProb float64
	CtlDelay     time.Duration
}

// Enabled reports whether any SIM knob is set; a disabled Config must
// not be attached to a fabric (the nil injector fast path is free).
// The real-backend classes have their own predicates (PlanEnabled,
// CtlEnabled).
func (c Config) Enabled() bool {
	return c.ReadFailProb > 0 || c.WriteFailProb > 0 || c.FAAFailProb > 0 ||
		c.ServerDropProb > 0 || c.SpikeProb > 0 || c.BrownoutDuration > 0
}

// PlanEnabled reports whether any backend-neutral steal knob is set —
// the class of faults a Plan injects into the rt and dist steal paths.
func (c Config) PlanEnabled() bool {
	return c.StealClaimFailProb > 0 || c.StealCopyFailProb > 0 || c.StealDelayProb > 0
}

// CtlEnabled reports whether any dist control-plane knob is set.
func (c Config) CtlEnabled() bool {
	return c.CtlDropProb > 0 || c.CtlTruncProb > 0 || c.CtlDelayProb > 0
}

// SimKnobs returns the names of the set knobs that only the simulator
// can honour; PlanKnobs and CtlKnobs do the same for the real-backend
// steal class and the dist control-plane class. The facade uses these
// to reject, per backend and BY NAME, exactly the knobs a backend
// cannot honour, instead of refusing WithFault wholesale.
func (c Config) SimKnobs() []string {
	var set []string
	for _, k := range []struct {
		name string
		on   bool
	}{
		{"ReadFailProb", c.ReadFailProb != 0},
		{"WriteFailProb", c.WriteFailProb != 0},
		{"FAAFailProb", c.FAAFailProb != 0},
		{"ServerDropProb", c.ServerDropProb != 0},
		{"SpikeProb", c.SpikeProb != 0},
		{"SpikeMinCycles", c.SpikeMinCycles != 0},
		{"SpikeMaxCycles", c.SpikeMaxCycles != 0},
		{"BrownoutPeriod", c.BrownoutPeriod != 0},
		{"BrownoutDuration", c.BrownoutDuration != 0},
	} {
		if k.on {
			set = append(set, k.name)
		}
	}
	return set
}

// PlanKnobs returns the set backend-neutral steal knobs (see SimKnobs).
func (c Config) PlanKnobs() []string {
	var set []string
	for _, k := range []struct {
		name string
		on   bool
	}{
		{"StealClaimFailProb", c.StealClaimFailProb != 0},
		{"StealCopyFailProb", c.StealCopyFailProb != 0},
		{"StealDelayProb", c.StealDelayProb != 0},
		{"StealDelayMin", c.StealDelayMin != 0},
		{"StealDelayMax", c.StealDelayMax != 0},
	} {
		if k.on {
			set = append(set, k.name)
		}
	}
	return set
}

// CtlKnobs returns the set dist control-plane knobs (see SimKnobs).
func (c Config) CtlKnobs() []string {
	var set []string
	for _, k := range []struct {
		name string
		on   bool
	}{
		{"CtlDropProb", c.CtlDropProb != 0},
		{"CtlTruncProb", c.CtlTruncProb != 0},
		{"CtlDelayProb", c.CtlDelayProb != 0},
		{"CtlDelay", c.CtlDelay != 0},
	} {
		if k.on {
			set = append(set, k.name)
		}
	}
	return set
}

// Validate rejects out-of-range knobs.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ReadFailProb", c.ReadFailProb},
		{"WriteFailProb", c.WriteFailProb},
		{"FAAFailProb", c.FAAFailProb},
		{"ServerDropProb", c.ServerDropProb},
		{"SpikeProb", c.SpikeProb},
		{"StealClaimFailProb", c.StealClaimFailProb},
		{"StealCopyFailProb", c.StealCopyFailProb},
		{"StealDelayProb", c.StealDelayProb},
		{"CtlDropProb", c.CtlDropProb},
		{"CtlTruncProb", c.CtlTruncProb},
		{"CtlDelayProb", c.CtlDelayProb},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1)", p.name, p.v)
		}
	}
	if c.SpikeMaxCycles < c.SpikeMinCycles {
		return fmt.Errorf("fault: SpikeMaxCycles %d < SpikeMinCycles %d", c.SpikeMaxCycles, c.SpikeMinCycles)
	}
	if c.BrownoutDuration > 0 && c.BrownoutPeriod > 0 && c.BrownoutDuration >= c.BrownoutPeriod {
		return fmt.Errorf("fault: BrownoutDuration %d >= BrownoutPeriod %d", c.BrownoutDuration, c.BrownoutPeriod)
	}
	if c.StealDelayMin < 0 || c.StealDelayMax < c.StealDelayMin {
		return fmt.Errorf("fault: steal delay range [%v, %v] invalid", c.StealDelayMin, c.StealDelayMax)
	}
	if c.CtlDelay < 0 {
		return fmt.Errorf("fault: CtlDelay %v negative", c.CtlDelay)
	}
	return nil
}

// Stats counts the injector's decisions.
type Stats struct {
	Decisions   uint64 // remote ops consulted
	Faults      uint64 // ops failed (probability draws)
	Brownouts   uint64 // ops failed because the target was browned out
	NoticeDrops uint64 // software-FAA request notices dropped
	Spikes      uint64 // ops delayed
	SpikeCycles uint64 // total injected delay
}

// Injector is a seeded, sim-clock-driven rdma.Injector.
type Injector struct {
	cfg    Config
	rng    sim.RNG
	period uint64
	stats  Stats
}

// New builds an injector from cfg (which must be Enabled and valid).
func New(cfg Config) (*Injector, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("fault: config has no fault source enabled")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	period := cfg.BrownoutPeriod
	if cfg.BrownoutDuration > 0 && period == 0 {
		period = 8 * cfg.BrownoutDuration
	}
	return &Injector{cfg: cfg, rng: sim.NewRNG(cfg.Seed), period: period}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Injector {
	in, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return in
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns a snapshot of the decision counters.
func (in *Injector) Stats() Stats { return in.stats }

// splitmix64 is the stateless mixer used to stagger brown-out phases.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// brownedOut reports whether target's endpoint is inside its brown-out
// window at virtual time now. Pure function of (seed, target, now) —
// no RNG stream is consumed, so brown-outs do not shift the per-op
// probability draws.
func (in *Injector) brownedOut(target int, now uint64) bool {
	if in.cfg.BrownoutDuration == 0 {
		return false
	}
	phase := splitmix64(in.cfg.Seed^uint64(target)*0x2545f4914f6cdd1d) % in.period
	return (now+phase)%in.period < in.cfg.BrownoutDuration
}

// Decide implements rdma.Injector.
func (in *Injector) Decide(op rdma.OpKind, from, target, bytes int, now uint64) (uint64, bool) {
	in.stats.Decisions++
	var extra uint64
	if in.cfg.SpikeProb > 0 && in.rng.Float64() < in.cfg.SpikeProb {
		span := in.cfg.SpikeMaxCycles - in.cfg.SpikeMinCycles
		extra = in.cfg.SpikeMinCycles
		if span > 0 {
			extra += in.rng.Uint64() % (span + 1)
		}
		in.stats.Spikes++
		in.stats.SpikeCycles += extra
	}
	if in.brownedOut(target, now) {
		in.stats.Brownouts++
		return extra, true
	}
	var p float64
	switch op {
	case rdma.OpRead:
		p = in.cfg.ReadFailProb
	case rdma.OpWrite:
		p = in.cfg.WriteFailProb
	case rdma.OpFAA:
		p = in.cfg.FAAFailProb
	case rdma.OpNotice:
		p = in.cfg.ServerDropProb
	}
	if p > 0 && in.rng.Float64() < p {
		if op == rdma.OpNotice {
			in.stats.NoticeDrops++
		} else {
			in.stats.Faults++
		}
		return extra, true
	}
	return extra, false
}

var _ rdma.Injector = (*Injector)(nil)
