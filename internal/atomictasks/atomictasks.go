// Package atomictasks implements the "atomic tasks" programming model
// of the paper's §2 taxonomy (Fig. 1 left, after Cilk-NOW [4]): a task
// never blocks — it runs to completion, and a logically sequential
// computation is split at every synchronisation point into explicit
// continuation tasks whose arguments are sent with send_argument. The
// paper argues this style is "not for human programmers"; this package
// exists so the claim is executable — compare fib here against the
// four-line fork-join version in workloads.Fib.
//
// A continuation is a record in the global heap: a fetch-and-add
// counter, the argument slots, and the FuncID to launch when the last
// argument arrives. Senders on any process deliver arguments with
// one-sided Puts and detect readiness with the fabric's fetch-and-add;
// whoever sends the last argument spawns the continuation task.
//
// Tasks in this model are spawned and immediately joined by their
// spawner (they are atomic: by the time the child-first Spawn returns,
// the child has completed — or the spawner was migrated, in which case
// the Join suspends exactly like any fork-join join would).
package atomictasks

import (
	"encoding/binary"

	"uniaddr/internal/core"
	"uniaddr/internal/gas"
)

// Continuation record layout in the global heap (little-endian):
//
//	+0   arrived  u64 (fetch-and-add counter)
//	+8   nargs    u64
//	+16  fid      u64 (FuncID of the continuation task)
//	+24  extra1   u64 (opaque; usually the next continuation — Fig. 1's
//	                   "cont int k" parameter)
//	+32  extra2   u64 (opaque; usually the argument index to send to)
//	+40  args[nargs] u64
const (
	crArrived = 0
	crNArgs   = 8
	crFid     = 16
	crExtra1  = 24
	crExtra2  = 32
	crArgs    = 40
)

// Cont names a continuation record.
type Cont = gas.Ref

// ContBytes returns the heap footprint of a continuation with n args.
func ContBytes(n int) uint64 { return crArgs + uint64(n)*8 }

// SpawnNext allocates a continuation that will run fid once nargs
// arguments have been sent to it (Fig. 1's spawn_next). extra is an
// opaque word the continuation can read (typically the continuation it
// must itself send to — the "cont int k" parameter of Fig. 1).
func SpawnNext(e *core.Env, fid core.FuncID, nargs int, extra1, extra2 uint64) Cont {
	h := e.Gas()
	k := h.MustAlloc(e.Worker().Proc(), ContBytes(nargs))
	var b [crArgs]byte
	binary.LittleEndian.PutUint64(b[crNArgs:], uint64(nargs))
	binary.LittleEndian.PutUint64(b[crFid:], uint64(fid))
	binary.LittleEndian.PutUint64(b[crExtra1:], extra1)
	binary.LittleEndian.PutUint64(b[crExtra2:], extra2)
	e.GasPut(k, b[:])
	return k
}

// continuation task frame layout: slot 0 holds the Cont ref; the task
// function reads its arguments through it.
const contLocals = 2 * 8

// Env wraps the continuation access helpers available to an atomic
// task's function.
type Env struct {
	*core.Env
}

// Arg returns argument i of the running continuation task.
func (e Env) Arg(i int) uint64 {
	k := Cont(e.U64(0))
	return e.GasGetU64(k.Add(crArgs + uint64(i)*8))
}

// Extra1 returns the continuation's first opaque word.
func (e Env) Extra1() uint64 {
	k := Cont(e.U64(0))
	return e.GasGetU64(k.Add(crExtra1))
}

// Extra2 returns the continuation's second opaque word.
func (e Env) Extra2() uint64 {
	k := Cont(e.U64(0))
	return e.GasGetU64(k.Add(crExtra2))
}

// Free releases the running task's continuation record (call once, at
// the end of the task).
func (e Env) Free() {
	k := Cont(e.U64(0))
	if k.Rank() == e.Worker().Rank() {
		e.Gas().Free(k)
		return
	}
	// Cross-process record release is bookkeeping, like task records.
	e.Worker().PeerGas(k.Rank()).Free(k)
}

// Fn is an atomic task body: it may send arguments and spawn
// continuations but never joins or suspends of its own accord. The
// returned status must be propagated (sends can migrate the task).
type Fn func(e Env) core.Status

// Register wraps an atomic task function for the core registry.
func Register(name string, fn Fn) core.FuncID {
	return core.Register(name, func(ce *core.Env) core.Status {
		return fn(Env{ce})
	})
}

// SendArgument delivers v as argument i of k (Fig. 1's send_argument):
// a one-sided Put plus a fetch-and-add on the arrival counter. If this
// was the last outstanding argument, the sender launches the
// continuation task (child-first: it runs immediately, which preserves
// depth-first order exactly as a fork-join runtime would).
//
// rp/handleSlot/joinRP follow the core.Env.Spawn discipline: on a false
// return the caller must return core.Unwound, and the resume points
// must re-enter at this SendArgument.
func SendArgument(e *core.Env, spawnRP, joinRP, handleSlot int, k Cont, i int, v uint64) bool {
	if e.RP() != spawnRP && e.RP() != joinRP {
		// Fresh execution of this send (not a migration/suspension
		// retry, which must not repeat the Put or the fetch-and-add).
		h := e.Gas()
		w := e.Worker()
		h.PutU64(w.Proc(), k.Add(crArgs+uint64(i)*8), v)
		nargs := h.GetU64(w.Proc(), k.Add(crNArgs))
		arrived := h.FetchAdd(w.Proc(), k.Add(crArrived), 1)
		if arrived+1 < nargs {
			return true // another sender will launch the continuation
		}
		fid := core.FuncID(h.GetU64(w.Proc(), k.Add(crFid)))
		kk := uint64(k)
		if !e.Spawn(spawnRP, handleSlot, fid, contLocals, func(c *core.Env) {
			c.SetU64(0, kk)
		}) {
			return false
		}
	}
	// Reached fresh after a launch, or resumed at spawnRP (migrated
	// while the continuation ran) or joinRP (suspended at the join).
	if _, ok := e.Join(joinRP, e.HandleAt(handleSlot)); !ok {
		return false
	}
	return true
}
