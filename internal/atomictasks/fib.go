package atomictasks

import (
	"uniaddr/internal/core"
	"uniaddr/internal/gas"
)

// Fibonacci in the atomic-tasks model — the executable version of the
// paper's Fig. 1 (left). Note the contortions relative to the fork-join
// version (workloads.Fib): the sum must be a separate continuation
// task, its inputs travel through heap records, and every logical
// "wait" is a split point. This is the programmability cost §2 argues
// against.

var (
	fibATFID core.FuncID
	sumATFID core.FuncID
	finFID   core.FuncID
)

// fib task frame: 0=k (Cont), 1=argIdx, 2=n, 3=sum cont, 4..5 handles.
const fibATLocals = 6 * 8

func init() {
	fibATFID = core.Register("fib-atomic", fibAT)
	sumATFID = Register("sum-atomic", sumAT)
	finFID = Register("finish-atomic", finishAT)
}

func fibAT(e *core.Env) core.Status {
	k := Cont(e.U64(0))
	idx := int(e.U64(1))
	n := e.U64(2)
	switch e.RP() {
	case 0:
		if n < 2 {
			if !SendArgument(e, 1, 2, 4, k, idx, n) {
				return core.Unwound
			}
			e.ReturnU64(0)
			return core.Done
		}
		// spawn_next Sum(k, ?x, ?y)
		sum := SpawnNext(e, sumATFID, 2, uint64(k), uint64(idx))
		e.SetU64(3, uint64(sum))
		// spawn Fib(x, n-1)
		if !e.Spawn(3, 4, fibATFID, fibATLocals, fibATInit(sum, 0, n-1)) {
			return core.Unwound
		}
		fallthrough
	case 3:
		if _, ok := e.Join(3, e.HandleAt(4)); !ok {
			return core.Unwound
		}
		// spawn Fib(y, n-2)
		sum := Cont(e.U64(3))
		if !e.Spawn(4, 5, fibATFID, fibATLocals, fibATInit(sum, 1, n-2)) {
			return core.Unwound
		}
		fallthrough
	case 4:
		if _, ok := e.Join(4, e.HandleAt(5)); !ok {
			return core.Unwound
		}
		e.ReturnU64(0)
		return core.Done
	case 1, 2:
		// resumed inside the leaf send
		if !SendArgument(e, 1, 2, 4, k, idx, n) {
			return core.Unwound
		}
		e.ReturnU64(0)
		return core.Done
	}
	panic("fib-atomic: bad resume point")
}

func fibATInit(k Cont, idx int, n uint64) func(*core.Env) {
	return func(c *core.Env) {
		c.SetU64(0, uint64(k))
		c.SetU64(1, uint64(idx))
		c.SetU64(2, n)
	}
}

// sumAT is the Sum continuation of Fig. 1: send x+y onward.
func sumAT(e Env) core.Status {
	k := Cont(e.Extra1())
	idx := int(e.Extra2())
	v := e.Arg(0) + e.Arg(1)
	if !SendArgument(e.Env, 1, 2, 1, k, idx, v) {
		return core.Unwound
	}
	e.Free()
	e.ReturnU64(0)
	return core.Done
}

// finishAT writes the final value into the result cell named by extra1
// and flips the flag at extra2.
func finishAT(e Env) core.Status {
	cell := gas.Ref(e.Extra1())
	flag := gas.Ref(e.Extra2())
	e.GasPutU64(cell, e.Arg(0))
	e.GasPutU64(flag, 1)
	e.Free()
	e.ReturnU64(0)
	return core.Done
}

// rootAT drives the dag: allocate the result cell + finish
// continuation, fire Fib(n), then poll until the final send lands.
// Frame: 0=flag ref, 1=cell ref, 2=n, 3=h, 4=h2.
var rootATFID core.FuncID

func init() { rootATFID = core.Register("root-atomic", rootAT) }

func rootAT(e *core.Env) core.Status {
	switch e.RP() {
	case 0:
		flag := e.GasAlloc(8)
		cell := e.GasAlloc(8)
		e.GasPutU64(flag, 0)
		e.SetU64(0, uint64(flag))
		e.SetU64(1, uint64(cell))
		fin := SpawnNext(e, finFID, 1, uint64(cell), uint64(flag))
		n := e.U64(2)
		if !e.Spawn(1, 3, fibATFID, fibATLocals, fibATInit(fin, 0, n)) {
			return core.Unwound
		}
		fallthrough
	case 1:
		if _, ok := e.Join(1, e.HandleAt(3)); !ok {
			return core.Unwound
		}
		fallthrough
	case 2:
		// Poll for the dag's completion (atomic tasks have no join; the
		// root is the only place allowed to wait, and it does so by
		// burning cycles like a driver program would).
		for e.GasGetU64(gas.Ref(e.U64(0))) == 0 {
			e.Work(500)
		}
		e.ReturnU64(e.GasGetU64(gas.Ref(e.U64(1))))
		return core.Done
	}
	panic("root-atomic: bad resume point")
}

// RunFib computes fib(n) in the atomic-tasks model on cfg's machine —
// the executable Fig. 1 (left).
func RunFib(cfg core.Config, n uint64) (uint64, *core.Machine, error) {
	m, err := core.NewMachine(cfg)
	if err != nil {
		return 0, nil, err
	}
	res, err := m.Run(rootATFID, 5*8, func(e *core.Env) { e.SetU64(2, n) })
	return res, m, err
}
