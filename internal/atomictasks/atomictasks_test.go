package atomictasks

import (
	"testing"

	"uniaddr/internal/core"
)

func fibSeq(n uint64) uint64 {
	a, b := uint64(0), uint64(1)
	for i := uint64(0); i < n; i++ {
		a, b = b, a+b
	}
	return a
}

func runAtomicFib(t *testing.T, workers int, n uint64, seed uint64) uint64 {
	t.Helper()
	cfg := core.DefaultConfig(workers)
	cfg.Seed = seed
	res, _, err := RunFib(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAtomicTasksFib(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 7, 12} {
		if got, want := runAtomicFib(t, 1, n, 1), fibSeq(n); got != want {
			t.Fatalf("atomic fib(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAtomicTasksFibParallel(t *testing.T) {
	want := fibSeq(13)
	for _, workers := range []int{4, 9} {
		for seed := uint64(1); seed <= 4; seed++ {
			if got := runAtomicFib(t, workers, 13, seed); got != want {
				t.Fatalf("workers=%d seed=%d: atomic fib(13) = %d, want %d", workers, seed, got, want)
			}
		}
	}
}

func TestContinuationRecordLayout(t *testing.T) {
	if ContBytes(2) != 56 {
		t.Fatalf("ContBytes(2) = %d", ContBytes(2))
	}
}
