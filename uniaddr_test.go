package uniaddr_test

import (
	"testing"

	"uniaddr"
	"uniaddr/internal/workloads"
)

// The facade's own doubling task: frame slot 0 = n, slot 1 = handle,
// slot 2 = partial.
var dblFID uniaddr.FuncID

func init() {
	dblFID = uniaddr.Register("facade-double-sum", func(e *uniaddr.Env) uniaddr.Status {
		switch e.RP() {
		case 0:
			n := e.U64(0)
			if n == 0 {
				e.ReturnU64(0)
				return uniaddr.Done
			}
			if !e.Spawn(1, 1, dblFID, 3*8, func(c *uniaddr.Env) { c.SetU64(0, n-1) }) {
				return uniaddr.Unwound
			}
			fallthrough
		case 1:
			r, ok := e.Join(1, e.HandleAt(1))
			if !ok {
				return uniaddr.Unwound
			}
			e.ReturnU64(e.U64(0) + r)
			return uniaddr.Done
		}
		panic("bad rp")
	})
}

func TestFacadeRun(t *testing.T) {
	rep, err := uniaddr.Run(dblFID, 3*8, func(e *uniaddr.Env) { e.SetU64(0, 50) },
		uniaddr.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(50 * 51 / 2); rep.Root != want {
		t.Fatalf("sum(1..50) = %d, want %d", rep.Root, want)
	}
	if rep.Tasks != 51 {
		t.Fatalf("tasks = %d", rep.Tasks)
	}
	if rep.Backend != uniaddr.BackendSim || rep.Workers != 4 {
		t.Fatalf("report attribution: backend=%q workers=%d", rep.Backend, rep.Workers)
	}
	if rep.VirtualCycles == 0 {
		t.Fatal("sim run reported no virtual time")
	}
	if rep.WallNS != 0 {
		t.Fatalf("sim run reported wall time %d ns", rep.WallNS)
	}
}

func TestFacadeConstantsAlias(t *testing.T) {
	// The facade constants must be the internal ones (aliases, not
	// copies of distinct types).
	var s uniaddr.Status = uniaddr.Done
	if s != uniaddr.Done || uniaddr.Unwound == uniaddr.Done {
		t.Fatal("status constants broken")
	}
	if uniaddr.SchemeUni == uniaddr.SchemeIso {
		t.Fatal("scheme constants broken")
	}
}

func TestFacadeProfiles(t *testing.T) {
	if uniaddr.SPARCCosts().SpawnCost() != 413 {
		t.Fatal("SPARC profile")
	}
	if uniaddr.XeonCosts().SpawnCost() != 100 {
		t.Fatal("Xeon profile")
	}
	if uniaddr.DefaultNetParams().SoftwareFAALatency() < 9000 {
		t.Fatal("fabric calibration")
	}
}

func TestFacadeWorkloadInterop(t *testing.T) {
	// Specs built by the workloads package run through the facade types
	// unchanged (aliases).
	spec := workloads.Fib(15, 0)
	rep, err := uniaddr.Run(spec.Fid, spec.Locals, spec.Init, uniaddr.WithWorkers(5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Root != spec.Expected {
		t.Fatalf("fib(15) = %d, want %d", rep.Root, spec.Expected)
	}
}

func TestFacadeBadConfig(t *testing.T) {
	cfg := uniaddr.DefaultConfig(0)
	if _, err := uniaddr.NewMachine(cfg); err == nil {
		t.Fatal("0 workers accepted")
	}
}
