// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§6), plus the ablations from DESIGN.md. Each
// bench runs the corresponding experiment at test scale and reports the
// headline quantity as custom metrics (cycles/steal, efficiency, …), so
// `go test -bench=. -benchmem` regenerates every result in one sweep.
// The full-size sweeps live behind cmd/uniaddr-bench -scale large.
package uniaddr_test

import (
	"testing"

	"uniaddr"
	"uniaddr/internal/core"
	"uniaddr/internal/harness"
	"uniaddr/internal/rdma"
	"uniaddr/internal/workloads"
)

// BenchmarkFig9RDMALatency regenerates the Fig. 9 latency curves and
// reports the small-message and 1 MiB READ latencies.
func BenchmarkFig9RDMALatency(b *testing.B) {
	var small, big uint64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig9(rdma.DefaultParams(), core.SPARCCosts().ClockHz, nil)
		if err != nil {
			b.Fatal(err)
		}
		small, big = pts[0].ReadCycles, pts[len(pts)-1].ReadCycles
	}
	b.ReportMetric(float64(small), "read8B-cycles")
	b.ReportMetric(float64(big), "read1MiB-cycles")
}

// BenchmarkTable2TaskCreation measures the empty-task creation cost on
// both machine profiles (paper: 413 and 100 cycles).
func BenchmarkTable2TaskCreation(b *testing.B) {
	var rows []harness.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Table2(2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].SPARCCycles, "sparc-cycles/task")
	b.ReportMetric(rows[0].XeonCycles, "xeon-cycles/task")
}

// BenchmarkFig10StealBreakdown regenerates the steal-time breakdown
// (paper: ≈42K cycles total, suspend+resume ≈7.7%).
func BenchmarkFig10StealBreakdown(b *testing.B) {
	var bd harness.StealBreakdown
	for i := 0; i < b.N; i++ {
		var err error
		bd, err = harness.Fig10(core.SchemeUni, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bd.Total(), "cycles/steal")
	b.ReportMetric(100*(bd.Suspend+bd.Resume)/bd.Total(), "suspend+resume-%")
	b.ReportMetric(bd.Lock, "lock-cycles")
}

// BenchmarkIsoVsUniSteal regenerates the §6.3 comparison (paper
// estimate: uni ≈ 0.71× iso).
func BenchmarkIsoVsUniSteal(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		var err error
		_, _, ratio, err = harness.IsoVsUni(12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ratio, "uni/iso-ratio")
}

// BenchmarkTable4StackUsage runs the Table 4 suite and reports the
// largest uni-address footprint seen (paper: ≤147,392 bytes).
func BenchmarkTable4StackUsage(b *testing.B) {
	var maxStack uint64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table4(30, "tiny", 3)
		if err != nil {
			b.Fatal(err)
		}
		maxStack = 0
		for _, r := range rows {
			if r.StackBytes > maxStack {
				maxStack = r.StackBytes
			}
		}
	}
	b.ReportMetric(float64(maxStack), "max-stack-bytes")
}

// scalingBench runs one Fig. 11 sub-figure at bench scale and reports
// throughput at the top worker count plus efficiency vs the base.
func scalingBench(b *testing.B, spec workloads.Spec) {
	b.Helper()
	workers := []int{15, 30, 60}
	var pts []harness.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.ScalingSweep(spec, workers, 1, 5, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	top := pts[len(pts)-1]
	b.ReportMetric(top.Throughput.Mean(), "items/simsec")
	b.ReportMetric(100*top.Efficiency, "efficiency-%")
}

// BenchmarkFig11aBTC1 — BTC iter=1 scaling (paper: 97–98% at 3840).
func BenchmarkFig11aBTC1(b *testing.B) { scalingBench(b, workloads.BTC(18, 1, 0)) }

// BenchmarkFig11bBTC2 — BTC iter=2 scaling (paper: 97–98%).
func BenchmarkFig11bBTC2(b *testing.B) { scalingBench(b, workloads.BTC(9, 2, 0)) }

// BenchmarkFig11cUTS — UTS scaling (paper: 97–99%).
func BenchmarkFig11cUTS(b *testing.B) {
	scalingBench(b, workloads.UTS(1, 13, workloads.DefaultUTSB0, 400))
}

// BenchmarkFig11dNQueens — NQueens scaling (paper: 78–95%).
func BenchmarkFig11dNQueens(b *testing.B) { scalingBench(b, workloads.NQueens(10, 100)) }

// BenchmarkSec4AddressSpace reports the measured per-process VA
// reservations of both schemes on a 32-worker machine.
func BenchmarkSec4AddressSpace(b *testing.B) {
	var pt harness.Sec4MeasuredPoint
	for i := 0; i < b.N; i++ {
		pts, err := harness.Sec4Measured([]int{32}, 2)
		if err != nil {
			b.Fatal(err)
		}
		pt = pts[0]
	}
	b.ReportMetric(float64(pt.IsoReserved), "iso-reserved-B")
	b.ReportMetric(float64(pt.UniReserved), "uni-reserved-B")
}

// BenchmarkAblateFAA compares software vs hardware fetch-and-add.
func BenchmarkAblateFAA(b *testing.B) {
	var pt harness.AblateFAAPoint
	for i := 0; i < b.N; i++ {
		pts, err := harness.AblateFAA([]int{30}, 4)
		if err != nil {
			b.Fatal(err)
		}
		pt = pts[0]
	}
	b.ReportMetric(pt.HardwareTput/pt.SoftwareTput, "hw/sw-speedup")
}

// BenchmarkAblateStackSize reports steal cost growth with stack size.
func BenchmarkAblateStackSize(b *testing.B) {
	var pts []harness.AblateStackSizePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.AblateStackSize([]uint64{256, 3055, 32768}, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[len(pts)-1].StealTotal-pts[0].StealTotal, "32KiB-vs-256B-cycles")
}

// BenchmarkSimulatorThroughput measures the raw simulator speed: real
// nanoseconds per simulated task (useful when sizing full-scale runs).
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := workloads.BTC(14, 1, 0) // 32767 tasks per run
	for i := 0; i < b.N; i++ {
		cfg := uniaddr.DefaultConfig(15)
		cfg.Seed = uint64(i + 1)
		m, res, err := spec.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res != spec.Expected {
			b.Fatal("bad result")
		}
		_ = m
	}
	b.ReportMetric(float64(spec.Expected), "simtasks/op")
}

// BenchmarkNativeSMRSpawn measures the real shared-memory runtime's
// per-task cost on this host (the living Table 2 companion).
func BenchmarkNativeSMRSpawn(b *testing.B) {
	pool := newBenchPool(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSpawnJoin(pool, 1000)
	}
	b.ReportMetric(1000, "tasks/op")
}

// BenchmarkAblateHelpFirst compares the paper's work-first scheduling
// against help-first tied tasks (§2).
func BenchmarkAblateHelpFirst(b *testing.B) {
	var pts []harness.AblateHelpFirstPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.AblateHelpFirst(16, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].BytesPerSteal), "workfirst-B/steal")
	b.ReportMetric(float64(pts[1].BytesPerSteal), "helpfirst-B/steal")
}

// BenchmarkAblateMultiWorker measures the §5.1 slots-per-process
// utilization loss.
func BenchmarkAblateMultiWorker(b *testing.B) {
	var pts []harness.AblateMultiWorkerPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.AblateMultiWorker(16, []int{1, 2}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[1].Tput/pts[0].Tput, "slots2-rel-tput")
}

// BenchmarkAblateLifelines compares random stealing vs lifeline-based
// load balancing (paper ref [24]).
func BenchmarkAblateLifelines(b *testing.B) {
	var pts []harness.AblateLifelinesPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.AblateLifelines(16, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].FailedProbes), "random-failed-probes")
	b.ReportMetric(float64(pts[1].FailedProbes), "lifeline-failed-probes")
}

// BenchmarkEfficiencyTrend reports BTC efficiency at an 8× worker ratio
// for a mid-size problem (the Fig. 11 bridge experiment).
func BenchmarkEfficiencyTrend(b *testing.B) {
	var pts []harness.TrendPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.EfficiencyTrend([]uint64{17}, 10, 8, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*pts[0].Efficiency, "efficiency-%")
}
