package uniaddr

import (
	"context"
	"fmt"
	"io"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/dist"
	"uniaddr/internal/fault"
	"uniaddr/internal/obs"
	"uniaddr/internal/rt"
)

// FaultConfig configures deterministic fault injection (an alias of
// the internal type, so values flow freely). The zero value disables
// injection entirely. The knobs split into three classes, and each
// backend honours the classes it can model:
//
//   - fabric knobs (ReadFailProb, WriteFailProb, FAAFailProb,
//     ServerDropProb, latency spikes, brownouts): sim only;
//   - steal knobs (StealClaimFailProb, StealCopyFailProb, steal
//     delays): rt and dist;
//   - control-plane knobs (CtlDropProb, CtlTruncProb, CtlDelayProb,
//     CtlDelay): dist only.
//
// Setting a knob the selected backend cannot honour returns an
// UnsupportedOptionError naming it.
type FaultConfig = fault.Config

// Backend names accepted by WithBackend.
const (
	// BackendSim is the deterministic virtual-time cluster simulator —
	// the semantic oracle, and the only backend with simulated costs,
	// fabric models, fault injection and observability.
	BackendSim = "sim"
	// BackendRT runs real goroutines on real cores inside one process.
	BackendRT = "rt"
	// BackendDist runs one OS process per worker over a shared-memory
	// segment mapped at the same base VA everywhere; see MaybeChild.
	BackendDist = "dist"
)

// options collects the functional-option state for one Run.
type options struct {
	backend    string
	workers    int
	seed       uint64
	costs      *Costs
	net        *NetParams
	fault      *FaultConfig
	obs        bool
	trace      io.Writer
	maxWall    time.Duration
	grain      uint64
	stealBatch int
	tierGroup  int
}

// Option configures Run.
type Option func(*options)

// WithBackend selects the execution backend: BackendSim (default),
// BackendRT or BackendDist.
func WithBackend(name string) Option { return func(o *options) { o.backend = name } }

// WithWorkers sets the worker count: simulated processes (sim),
// OS threads (rt) or OS processes (dist). Default 4.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithSeed pins the seed driving every random scheduling decision.
// Equal seeds give bit-identical runs on the sim backend. Default 1.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithCosts sets the simulated CPU cost profile (e.g. SPARCCosts,
// XeonCosts). Sim backend only — the real backends' costs are the
// hardware's.
func WithCosts(c Costs) Option { return func(o *options) { o.costs = &c } }

// WithNet sets the simulated RDMA fabric parameters. Sim backend only.
func WithNet(p NetParams) Option { return func(o *options) { o.net = &p } }

// WithFault enables deterministic fault injection. Every backend
// accepts the knob classes it can model (see FaultConfig); a knob the
// backend cannot honour is rejected with an UnsupportedOptionError,
// never silently ignored.
func WithFault(fc FaultConfig) Option { return func(o *options) { o.fault = &fc } }

// WithObs toggles the structured observability recorder on ANY
// backend: virtual-time event rings and task lineage on sim,
// wall-clock per-worker rings on rt, segment-hosted per-rank rings on
// dist (harvested by the parent even after a worker crash). The
// Report's Obs block carries the event counts, per-worker ring
// overflow and latency histograms; combine with WithTrace for a
// Perfetto timeline. When off (the default) the real backends'
// recorders are nil and the instrumented hot paths cost one pointer
// compare per event site.
func WithObs(on bool) Option { return func(o *options) { o.obs = on } }

// WithTrace streams a Chrome/Perfetto trace of the run to w (implies
// WithObs(true)). The trace's top-level clockDomain field names the
// timestamp domain: virtual cycles on sim, wall nanoseconds on
// rt/dist. Works on every backend.
func WithTrace(w io.Writer) Option { return func(o *options) { o.trace = w } }

// WithMaxWall bounds a real backend's wall-clock run time (rt, dist);
// exceeding it aborts the run with an error instead of hanging. Zero
// keeps the backend default.
func WithMaxWall(d time.Duration) Option { return func(o *options) { o.maxWall = d } }

// GrainAuto selects adaptive granularity: each workload applies its
// default sequential cutoff only while the worker's own deque holds
// surplus work, collapsing to full task expansion when steal pressure
// drains it.
const GrainAuto = core.GrainAuto

// WithGrain sets the granularity-control cutoff passed to grain-aware
// workloads (every workload in internal/workloads honours it): 0 (the
// default) disables coalescing, GrainAuto adapts to observed steal
// demand, any other value is a static sequential cutoff. Coalescing
// changes task counts only — results and total Work cycles are
// preserved by construction. Works on every backend.
func WithGrain(g uint64) Option { return func(o *options) { o.grain = g } }

// WithStealBatch bounds how many deque entries one steal round trip may
// move on the real backends: 0 (the default) lets the deque's own
// claim bound apply (steal-half up to cap/4), 1 restores single-entry
// stealing, larger values clamp to the claim bound. Sim models
// single-entry steals only and rejects the option.
func WithStealBatch(n int) Option { return func(o *options) { o.stealBatch = n } }

// WithTierGroup sets the distance-tier width for victim selection on
// the real backends: workers whose rank falls in the same group of n
// are VERYNEAR, adjacent groups NEAR, and so on outward; thieves probe
// near tiers before far ones. 0 keeps the default group width. Sim's
// victim model is flat and rejects the option.
func WithTierGroup(n int) Option { return func(o *options) { o.tierGroup = n } }

// UnsupportedOptionError reports an option that the selected backend
// cannot honour — returned instead of silently ignoring the request,
// so a caller asking for fabric fault injection on rt learns the run
// would not have tested what they meant to test.
type UnsupportedOptionError struct {
	Backend string
	Option  string
}

func (e *UnsupportedOptionError) Error() string {
	return fmt.Sprintf("uniaddr: the %s backend cannot honour %s; drop the option or pick a backend that models it",
		e.Backend, e.Option)
}

// rejectFaultKnobs returns the UnsupportedOptionError for the first
// fault knob in fc that backend cannot honour, or nil. The per-class
// screens: sim rejects the real-backend steal and control-plane knobs,
// rt rejects fabric and control-plane knobs, dist rejects fabric knobs
// only.
func rejectFaultKnobs(backend string, fc *FaultConfig) error {
	if fc == nil {
		return nil
	}
	var bad []string
	switch backend {
	case BackendSim:
		bad = append(fc.PlanKnobs(), fc.CtlKnobs()...)
	case BackendRT:
		bad = append(fc.SimKnobs(), fc.CtlKnobs()...)
	case BackendDist:
		bad = fc.SimKnobs()
	}
	if len(bad) > 0 {
		return &UnsupportedOptionError{Backend: backend, Option: "WithFault." + bad[0]}
	}
	return nil
}

// Report is the unified result of a Run on any backend: the same shape
// whether the workers were simulated processes, OS threads or OS
// processes, so tooling can compare backends field by field.
type Report struct {
	Backend string `json:"backend"`
	Workers int    `json:"workers"`
	// Root is the root task's result.
	Root uint64 `json:"root_result"`

	// Wall-clock time of the run (real backends; 0 on sim, where no
	// wall time is meaningful).
	WallNS int64 `json:"wall_ns,omitempty"`
	// Virtual time of the run (sim; 0 on the real backends).
	VirtualCycles  uint64  `json:"virtual_cycles,omitempty"`
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`

	// Job and QueueNS are set only on Service per-job reports: the
	// job's service-wide ID and its submit→dispatch queueing latency.
	// Zero (and omitted from JSON) on Run reports.
	Job     uint64 `json:"job,omitempty"`
	QueueNS int64  `json:"queue_ns,omitempty"`

	Tasks         uint64 `json:"tasks_executed"`
	Spawns        uint64 `json:"spawns"`
	Suspends      uint64 `json:"suspends"`
	StealAttempts uint64 `json:"steal_attempts"`
	StealsOK      uint64 `json:"steals_ok"`
	// StealBatches counts successful steal ROUND TRIPS on the real
	// backends; StealsOK counts the entries they moved, so
	// StealsOK/StealBatches is the mean batch width. 0 on sim, whose
	// steal model is single-entry.
	StealBatches uint64 `json:"steal_batches,omitempty"`
	BytesStolen  uint64 `json:"bytes_stolen"`
	MaxStackUsed uint64 `json:"max_stack_used,omitempty"`

	// Failure counters (non-zero only under fault injection; populated
	// by every backend from its own resilience machinery).
	StealFaults      uint64 `json:"steal_faults,omitempty"`
	StealRetries     uint64 `json:"steal_retries,omitempty"`
	StealAbortsFault uint64 `json:"steal_aborts_fault,omitempty"`
	StealRollbacks   uint64 `json:"steal_rollbacks,omitempty"`
	VictimBlacklists uint64 `json:"victim_blacklists,omitempty"`

	// ObsEvents counts events the observability recorder captured
	// (WithObs(true), any backend). Kept for seed-era tooling; Obs has
	// the full breakdown.
	ObsEvents uint64 `json:"obs_events,omitempty"`

	// Obs is the observability digest when WithObs/WithTrace was set:
	// clock domain, event and ring-overflow accounting, and the latency
	// histograms. Nil when observability was off.
	Obs *ObsReport `json:"obs,omitempty"`
}

// ObsReport is the Report's observability digest.
type ObsReport struct {
	// Clock names the timestamp domain ("virtual-cycles" or "wall-ns").
	Clock string `json:"clock"`
	// Events counts events ever recorded (kept + dropped).
	Events uint64 `json:"events"`
	// Dropped counts events discarded by full bounded rings.
	Dropped uint64 `json:"dropped,omitempty"`
	// DroppedPerWorker is the per-rank ring-overflow count (index =
	// rank; omitted when no ring overflowed).
	DroppedPerWorker []uint64 `json:"dropped_per_worker,omitempty"`
	// Hists are the run's latency histograms in the report's clock unit.
	Hists []ObsHist `json:"hists,omitempty"`
}

// ObsHist is one latency histogram's digest.
type ObsHist struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// finishObs folds an export into the report (digest + legacy ObsEvents)
// and writes the Chrome trace when requested. Nil ex is a no-op (obs
// was off); a non-nil trace writer with nil ex is an error — the caller
// asked for a trace the backend never recorded.
func finishObs(rep *Report, ex *obs.Export, trace io.Writer) error {
	if ex == nil {
		if trace != nil {
			return fmt.Errorf("uniaddr: WithTrace set but the run produced no observability data")
		}
		return nil
	}
	o := &ObsReport{Clock: ex.Clock, Events: ex.Events(), Dropped: ex.Dropped()}
	if o.Dropped > 0 {
		for _, l := range ex.Logs {
			o.DroppedPerWorker = append(o.DroppedPerWorker, l.Dropped)
		}
	}
	for _, nh := range ex.Hists {
		h := nh.Hist
		o.Hists = append(o.Hists, ObsHist{
			Name: nh.Name, Count: h.Count, Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			Max: h.Max,
		})
	}
	rep.Obs = o
	rep.ObsEvents = o.Events
	if trace != nil {
		opts := &obs.ChromeOpts{FuncName: func(id uint32) string { return core.FuncName(core.FuncID(id)) }}
		if err := obs.WriteChromeTraceExport(trace, ex, opts); err != nil {
			return fmt.Errorf("uniaddr: writing trace: %w", err)
		}
	}
	return nil
}

// Run executes a root task of fid with localsLen bytes of frame locals
// initialised by init, on the backend selected by the options (sim by
// default), and returns the unified Report.
//
// Before using WithBackend(BackendDist), the program's main (or
// TestMain) must call MaybeChild first: the dist backend re-execs the
// current binary for its worker processes.
func Run(fid FuncID, localsLen uint32, init func(*Env), opts ...Option) (Report, error) {
	o := options{backend: BackendSim, workers: 4, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		return Report{}, fmt.Errorf("uniaddr: WithWorkers(%d): need at least one worker", o.workers)
	}
	if err := rejectFaultKnobs(o.backend, o.fault); err != nil {
		return Report{}, err
	}
	switch o.backend {
	case BackendSim:
		// Sim's steal model is single-entry and its victim order flat;
		// the real-backend steal-transport knobs are rejected, not
		// ignored (WithGrain is honoured — granularity is a workload
		// property, not a transport one).
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{o.stealBatch != 0, "WithStealBatch"},
			{o.tierGroup != 0, "WithTierGroup"},
		} {
			if bad.set {
				return Report{}, &UnsupportedOptionError{Backend: o.backend, Option: bad.name}
			}
		}
		return runSim(o, fid, localsLen, init)
	case BackendRT, BackendDist:
		// Whole sim-only OPTIONS are rejected, not ignored: a run that
		// silently dropped the cost or fault model would report clean
		// results for an experiment that never happened. WithFault is
		// screened per knob above — the steal (rt, dist) and
		// control-plane (dist) knobs are honoured for real.
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{o.costs != nil, "WithCosts"},
			{o.net != nil, "WithNet"},
		} {
			if bad.set {
				return Report{}, &UnsupportedOptionError{Backend: o.backend, Option: bad.name}
			}
		}
		if o.backend == BackendRT {
			return runRT(o, fid, localsLen, init)
		}
		return runDist(o, fid, localsLen, init)
	default:
		return Report{}, fmt.Errorf("uniaddr: unknown backend %q (WithBackend accepts %q, %q, %q)",
			o.backend, BackendSim, BackendRT, BackendDist)
	}
}

// MaybeChild routes a process that was re-exec'd as a dist worker into
// the worker entrypoint (it never returns in that case) and is a no-op
// otherwise. Any binary that may call Run with WithBackend(BackendDist)
// must call this FIRST in main / TestMain.
func MaybeChild() { dist.MaybeChild() }

func runSim(o options, fid FuncID, localsLen uint32, init func(*Env)) (Report, error) {
	cfg := core.DefaultConfig(o.workers)
	cfg.Seed = o.seed
	if o.costs != nil {
		cfg.Costs = *o.costs
	}
	if o.net != nil {
		cfg.Net = *o.net
	}
	if o.fault != nil {
		cfg.Fault = *o.fault
	}
	cfg.Grain = o.grain
	cfg.Obs = o.obs || o.trace != nil
	m, err := core.NewMachine(cfg)
	if err != nil {
		return Report{}, err
	}
	root, err := m.Run(fid, localsLen, init)
	if err != nil {
		return Report{}, err
	}
	if err := m.CheckQuiescence(); err != nil {
		return Report{}, err
	}
	ts := m.TotalStats()
	rep := Report{
		Backend: BackendSim, Workers: o.workers, Root: root,
		VirtualCycles: m.ElapsedCycles(), VirtualSeconds: m.ElapsedSeconds(),
		Tasks: ts.TasksExecuted, Spawns: ts.Spawns, Suspends: ts.Suspends,
		StealAttempts: ts.StealAttempts, StealsOK: ts.StealsOK,
		BytesStolen: ts.BytesStolen, MaxStackUsed: m.MaxStackUsage(),
		StealFaults: ts.StealFaults, StealRetries: ts.StealRetries,
		StealAbortsFault: ts.StealAbortsFault, StealRollbacks: ts.StealRollbacks,
		VictimBlacklists: ts.VictimBlacklists,
	}
	if err := finishObs(&rep, m.Obs().Export(), o.trace); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// runRT executes a Run on the rt backend as sugar over a throwaway
// one-job Service: the persistent-pool machinery (job slot, tagged
// records, per-job quiescence) IS the single-run machinery now, just
// closed after one job. The Report stays byte-compatible — since the
// pool ran exactly this one job, its total counters are the job's.
func runRT(o options, fid FuncID, localsLen uint32, init func(*Env)) (Report, error) {
	maxWall := o.maxWall
	if maxWall == 0 {
		// Run keeps the single-run deadlock-guard default; only an
		// explicit Service is unbounded by default.
		maxWall = rt.DefaultConfig(o.workers).MaxWall
	}
	svcOpts := []ServiceOption{
		ServiceBackend(BackendRT), ServiceWorkers(o.workers), ServiceSeed(o.seed),
		ServiceObs(o.obs || o.trace != nil),
		ServiceStealBatch(o.stealBatch), ServiceTierGroup(o.tierGroup),
		ServiceMaxWall(maxWall), ServiceMaxJobs(1), ServiceQueueDepth(1),
	}
	if o.fault != nil {
		svcOpts = append(svcOpts, ServiceFault(*o.fault))
	}
	s, err := NewService(svcOpts...)
	if err != nil {
		return Report{}, err
	}
	job, err := s.Submit(context.Background(), fid, localsLen, init, JobGrain(o.grain))
	if err != nil {
		_ = s.Close()
		return Report{}, err
	}
	jrep, jerr := job.Wait()
	cerr := s.Close()
	if jerr != nil {
		return Report{}, jerr
	}
	if cerr != nil {
		return Report{}, cerr
	}
	ts := s.pool.TotalStats()
	rep := Report{
		Backend: BackendRT, Workers: o.workers, Root: jrep.Root,
		WallNS: jrep.WallNS,
		Tasks:  ts.TasksExecuted, Spawns: ts.Spawns, Suspends: ts.Suspends,
		StealAttempts: ts.StealAttempts, StealsOK: ts.StealsOK,
		StealBatches: ts.StealBatches,
		BytesStolen:  ts.BytesStolen, MaxStackUsed: ts.MaxStackUsed,
		StealFaults: ts.StealFaults, StealRetries: ts.StealRetries,
		StealAbortsFault: ts.StealAbortsFault, StealRollbacks: ts.StealRollbacks,
		VictimBlacklists: ts.VictimBlacklists,
	}
	if err := finishObs(&rep, s.pool.Obs().Export(), o.trace); err != nil {
		return Report{}, err
	}
	return rep, nil
}

func runDist(o options, fid FuncID, localsLen uint32, init func(*Env)) (Report, error) {
	cfg := dist.DefaultConfig(o.workers)
	cfg.Seed = o.seed
	cfg.Obs = o.obs || o.trace != nil
	cfg.Grain = o.grain
	cfg.StealBatch = o.stealBatch
	cfg.TierGroup = o.tierGroup
	if o.maxWall != 0 {
		cfg.MaxWall = o.maxWall
	}
	if o.fault != nil {
		cfg.Fault = *o.fault
	}
	res, err := dist.Run(cfg, fid, localsLen, init)
	if err != nil {
		// A failed run may still carry the harvested rings (crash
		// forensics); stream the trace if one was requested so the dead
		// rank's last events are not lost with the error.
		if o.trace != nil && res.Obs != nil {
			opts := &obs.ChromeOpts{FuncName: func(id uint32) string { return core.FuncName(core.FuncID(id)) }}
			_ = obs.WriteChromeTraceExport(o.trace, res.Obs, opts)
		}
		return Report{}, err
	}
	ts := res.TotalStats()
	rep := Report{
		Backend: BackendDist, Workers: o.workers, Root: res.Root,
		WallNS: res.Elapsed.Nanoseconds(),
		Tasks:  ts.TasksExecuted, Spawns: ts.Spawns, Suspends: ts.Suspends,
		StealAttempts: ts.StealAttempts, StealsOK: ts.StealsOK,
		StealBatches: ts.StealBatches,
		BytesStolen:  ts.BytesStolen, MaxStackUsed: ts.MaxStackUsed,
		StealFaults: ts.StealFaults, StealRetries: ts.StealRetries,
		StealAbortsFault: ts.StealAbortsFault, StealRollbacks: ts.StealRollbacks,
		VictimBlacklists: ts.VictimBlacklists,
	}
	if err := finishObs(&rep, res.Obs, o.trace); err != nil {
		return Report{}, err
	}
	return rep, nil
}
