package uniaddr_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"uniaddr"
	"uniaddr/internal/workloads"
)

// TestServiceRTPersistentPool is the facade end of the tentpole: one rt
// Service takes many concurrent submissions, every per-job Report
// matches its sequential oracle, and no worker goroutine exits between
// jobs — the pool outlives them all.
func TestServiceRTPersistentPool(t *testing.T) {
	svc, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendRT),
		uniaddr.ServiceWorkers(4),
		uniaddr.ServiceMaxJobs(8),
		uniaddr.ServiceQueueDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	specs := []workloads.Spec{
		workloads.Fib(16, 20),
		workloads.BTC(8, 1, 10),
		workloads.NQueens(6, 10),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for round := 0; round < 3; round++ {
		for _, spec := range specs {
			wg.Add(1)
			go func(spec workloads.Spec) {
				defer wg.Done()
				job, err := svc.Submit(context.Background(), spec.Fid, spec.Locals, spec.Init)
				if err != nil {
					errs <- fmt.Errorf("submit %s: %w", spec.Name, err)
					return
				}
				rep, err := job.Wait()
				if err != nil {
					errs <- fmt.Errorf("%s (job %d): %w", spec.Name, job.ID(), err)
					return
				}
				if rep.Root != spec.Expected {
					errs <- fmt.Errorf("%s (job %d): root %d, want %d", spec.Name, job.ID(), rep.Root, spec.Expected)
				}
				if rep.Tasks != rep.Spawns+1 {
					errs <- fmt.Errorf("%s (job %d): executed %d != spawned %d + 1", spec.Name, job.ID(), rep.Tasks, rep.Spawns)
				}
				if rep.Job != job.ID() || rep.Backend != uniaddr.BackendRT {
					errs <- fmt.Errorf("%s: report attribution job=%d backend=%q", spec.Name, rep.Job, rep.Backend)
				}
			}(spec)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := svc.WorkersExited(); got != 0 {
		t.Errorf("%d workers exited while the service was live", got)
	}
	if got := svc.JobsCompleted(); got != 9 {
		t.Errorf("JobsCompleted = %d, want 9", got)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceSimEphemeralJobs drives the same facade on the default sim
// backend: each job gets its own deterministic world, so equal JobSeed
// values give bit-identical virtual clocks.
func TestServiceSimEphemeralJobs(t *testing.T) {
	svc, err := uniaddr.NewService(uniaddr.ServiceWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	spec := workloads.Fib(14, 0)
	var reps [3]uniaddr.Report
	for i := range reps {
		job, err := svc.Submit(context.Background(), spec.Fid, spec.Locals, spec.Init,
			uniaddr.JobSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		if reps[i], err = job.Wait(); err != nil {
			t.Fatal(err)
		}
		if reps[i].Root != spec.Expected {
			t.Fatalf("job %d: root %d, want %d", job.ID(), reps[i].Root, spec.Expected)
		}
		if reps[i].VirtualCycles == 0 {
			t.Fatalf("job %d: sim job reported no virtual time", job.ID())
		}
	}
	if reps[0].VirtualCycles != reps[1].VirtualCycles || reps[1].VirtualCycles != reps[2].VirtualCycles {
		t.Errorf("equal JobSeed diverged: %d, %d, %d cycles",
			reps[0].VirtualCycles, reps[1].VirtualCycles, reps[2].VirtualCycles)
	}
	if reps[0].Job == reps[1].Job {
		t.Error("distinct jobs share an ID")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceBackpressure pins the typed saturation error on a 1-slot,
// depth-1 rt service.
func TestServiceBackpressure(t *testing.T) {
	svc, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendRT),
		uniaddr.ServiceWorkers(2),
		uniaddr.ServiceMaxJobs(1),
		uniaddr.ServiceQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	heavy := workloads.Fib(20, 500)
	j1, err := svc.Submit(context.Background(), heavy.Fid, heavy.Locals, heavy.Init)
	if err != nil {
		t.Fatal(err)
	}
	// Admission of the second job means the first was claimed and holds
	// the only slot; the third must then bounce.
	var j2 *uniaddr.Job
	for {
		j2, err = svc.Submit(context.Background(), heavy.Fid, heavy.Locals, heavy.Init)
		if err == nil {
			break
		}
		if !errors.Is(err, uniaddr.ErrServiceSaturated) {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := svc.Submit(context.Background(), heavy.Fid, heavy.Locals, heavy.Init); !errors.Is(err, uniaddr.ErrServiceSaturated) {
		t.Fatalf("third submit: got %v, want ErrServiceSaturated", err)
	}
	for _, j := range []*uniaddr.Job{j1, j2} {
		rep, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Root != heavy.Expected {
			t.Fatalf("job %d: root %d, want %d", j.ID(), rep.Root, heavy.Expected)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceContextCancel cancels a running rt job via its submission
// context: the canceled job resolves to a JobCanceledError wrapping
// context.Canceled while a co-resident job finishes untouched.
func TestServiceContextCancel(t *testing.T) {
	svc, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendRT),
		uniaddr.ServiceWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	victim := workloads.Fib(24, 200)
	vj, err := svc.Submit(ctx, victim.Fid, victim.Locals, victim.Init)
	if err != nil {
		t.Fatal(err)
	}
	bystander := workloads.Fib(16, 20)
	bj, err := svc.Submit(context.Background(), bystander.Fid, bystander.Locals, bystander.Init)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	cancel()
	_, verr := vj.Wait()
	var jce *uniaddr.JobCanceledError
	if verr != nil {
		if !errors.As(verr, &jce) || !errors.Is(verr, context.Canceled) {
			t.Fatalf("canceled job: got %v, want JobCanceledError wrapping context.Canceled", verr)
		}
	} // else: the job won the race and completed first — legal.
	rep, err := bj.Wait()
	if err != nil || rep.Root != bystander.Expected {
		t.Fatalf("co-resident job disturbed by cancel: root %d err %v, want %d", rep.Root, err, bystander.Expected)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceJobMaxWall bounds one job's wall clock on a shared pool.
func TestServiceJobMaxWall(t *testing.T) {
	svc, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendRT),
		uniaddr.ServiceWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	heavy := workloads.Fib(26, 2000)
	job, err := svc.Submit(context.Background(), heavy.Fid, heavy.Locals, heavy.Init,
		uniaddr.JobMaxWall(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(); err != nil {
		var jce *uniaddr.JobCanceledError
		if !errors.As(err, &jce) {
			t.Fatalf("deadline-blown job: got %v, want JobCanceledError", err)
		}
	} else {
		t.Log("job finished inside 20ms; deadline never fired (fast host)")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceJobMaxWallExcludesQueueTime pins the deadline anchor: the
// JobMaxWall clock arms at dispatch, so a job that outwaits its whole
// budget in the admission queue behind a long-running tenant must still
// run — and, being near-instant, complete without a cancellation.
func TestServiceJobMaxWallExcludesQueueTime(t *testing.T) {
	svc, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendRT),
		uniaddr.ServiceWorkers(2),
		uniaddr.ServiceMaxJobs(1))
	if err != nil {
		t.Fatal(err)
	}
	heavy := workloads.Fib(26, 2000)
	j1, err := svc.Submit(context.Background(), heavy.Fid, heavy.Locals, heavy.Init)
	if err != nil {
		t.Fatal(err)
	}
	quick := workloads.Fib(10, 0)
	budget := 15 * time.Millisecond
	j2, err := svc.Submit(context.Background(), quick.Fid, quick.Locals, quick.Init,
		uniaddr.JobMaxWall(budget))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := j2.Wait()
	if err != nil {
		t.Fatalf("queued job canceled by a deadline its execution never touched: %v", err)
	}
	if rep.Root != quick.Expected {
		t.Fatalf("job %d: root %d, want %d", j2.ID(), rep.Root, quick.Expected)
	}
	// The scenario only bites if the queue wait actually exceeded the
	// budget (the single slot was busy for the whole heavy job).
	if rep.QueueNS <= budget.Nanoseconds() {
		t.Logf("queue wait %v never exceeded the %v budget; scenario degenerate on this host", time.Duration(rep.QueueNS), budget)
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceMaxJobsRejectedOnDist pins the never-silently-ignored
// contract: dist serializes jobs through one segment mapping, so a
// ServiceMaxJobs above 1 must be rejected, not pinned down to 1.
func TestServiceMaxJobsRejectedOnDist(t *testing.T) {
	var uo *uniaddr.UnsupportedOptionError
	if _, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendDist),
		uniaddr.ServiceMaxJobs(8)); !errors.As(err, &uo) {
		t.Fatalf("dist ServiceMaxJobs(8): got %v, want UnsupportedOptionError", err)
	}
	// 1 (the layout's actual bound) and unset stay accepted.
	for _, opts := range [][]uniaddr.ServiceOption{
		{uniaddr.ServiceBackend(uniaddr.BackendDist), uniaddr.ServiceMaxJobs(1)},
		{uniaddr.ServiceBackend(uniaddr.BackendDist)},
	} {
		svc, err := uniaddr.NewService(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServiceOptionClasses pins the ServiceOption/JobOption split:
// options that need a per-job world are rejected on the persistent rt
// pool and vice versa, always with a structured UnsupportedOptionError.
func TestServiceOptionClasses(t *testing.T) {
	spec := workloads.Fib(10, 0)
	rtSvc, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendRT), uniaddr.ServiceWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var uo *uniaddr.UnsupportedOptionError
	if _, err := rtSvc.Submit(context.Background(), spec.Fid, spec.Locals, spec.Init,
		uniaddr.JobSeed(9)); !errors.As(err, &uo) {
		t.Errorf("rt service accepted JobSeed (err=%v)", err)
	}
	if _, err := rtSvc.Submit(context.Background(), spec.Fid, spec.Locals, spec.Init,
		uniaddr.JobTrace(&bytes.Buffer{})); !errors.As(err, &uo) {
		t.Errorf("rt service accepted JobTrace (err=%v)", err)
	}
	if err := rtSvc.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts []uniaddr.ServiceOption
	}{
		{"sim+ServiceTrace", []uniaddr.ServiceOption{uniaddr.ServiceTrace(&bytes.Buffer{})}},
		{"sim+ServiceStealBatch", []uniaddr.ServiceOption{uniaddr.ServiceStealBatch(1)}},
		{"rt+ServiceCosts", []uniaddr.ServiceOption{
			uniaddr.ServiceBackend(uniaddr.BackendRT), uniaddr.ServiceCosts(uniaddr.XeonCosts())}},
	} {
		if _, err := uniaddr.NewService(tc.opts...); !errors.As(err, &uo) {
			t.Errorf("%s: got %v, want UnsupportedOptionError", tc.name, err)
		}
	}
	if _, err := uniaddr.NewService(uniaddr.ServiceBackend("quantum")); err == nil {
		t.Error("unknown service backend accepted")
	}
}

func TestServiceClosed(t *testing.T) {
	svc, err := uniaddr.NewService(uniaddr.ServiceWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	spec := workloads.Fib(10, 0)
	if _, err := svc.Submit(context.Background(), spec.Fid, spec.Locals, spec.Init); !errors.Is(err, uniaddr.ErrServiceClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrServiceClosed", err)
	}
	if err := svc.Close(); !errors.Is(err, uniaddr.ErrServiceClosed) {
		t.Fatalf("second Close: got %v, want ErrServiceClosed", err)
	}
}

// TestServiceTraceJobTagged exports the pool-wide rt timeline and
// checks task events carry job IDs — the obs plumbing that lets one
// Perfetto view separate co-resident jobs.
func TestServiceTraceJobTagged(t *testing.T) {
	var buf bytes.Buffer
	svc, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendRT),
		uniaddr.ServiceWorkers(2),
		uniaddr.ServiceTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	spec := workloads.Fib(14, 0)
	ids := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		job, err := svc.Submit(context.Background(), spec.Fid, spec.Locals, spec.Init)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(); err != nil {
			t.Fatal(err)
		}
		ids[job.ID()] = true
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		ClockDomain string `json:"clockDomain"`
		TraceEvents []struct {
			Cat  string `json:"cat"`
			Args *struct {
				Job uint64 `json:"job"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("service trace not valid JSON: %v", err)
	}
	if trace.ClockDomain != "wall-ns" {
		t.Fatalf("clockDomain %q, want wall-ns", trace.ClockDomain)
	}
	seen := map[uint64]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Cat == "task" && ev.Args != nil && ev.Args.Job != 0 {
			seen[ev.Args.Job] = true
		}
	}
	for id := range ids {
		if !seen[id] {
			t.Errorf("no task event tagged with job %d in the service trace", id)
		}
	}
}

// TestServiceRunSugarEquivalence pins Run-as-sugar: a Run and a
// one-job Service on the same rt inputs agree on the oracle-checked
// result and the conservation law.
func TestServiceRunSugarEquivalence(t *testing.T) {
	spec := workloads.Fib(15, 0)
	rep, err := uniaddr.Run(spec.Fid, spec.Locals, spec.Init,
		uniaddr.WithBackend(uniaddr.BackendRT), uniaddr.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Root != spec.Expected || rep.Tasks != rep.Spawns+1 {
		t.Fatalf("Run: root %d tasks %d spawns %d, want root %d, tasks=spawns+1",
			rep.Root, rep.Tasks, rep.Spawns, spec.Expected)
	}
	if rep.Job != 0 || rep.QueueNS != 0 {
		t.Fatalf("Run report leaked service-only fields: job=%d queue_ns=%d", rep.Job, rep.QueueNS)
	}
	svc, err := uniaddr.NewService(
		uniaddr.ServiceBackend(uniaddr.BackendRT), uniaddr.ServiceWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc.Submit(context.Background(), spec.Fid, spec.Locals, spec.Init)
	if err != nil {
		t.Fatal(err)
	}
	srep, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if srep.Root != rep.Root {
		t.Fatalf("service root %d != Run root %d", srep.Root, rep.Root)
	}
	if srep.Tasks != rep.Tasks || srep.Spawns != rep.Spawns {
		t.Fatalf("per-job counters diverge from Run totals: tasks %d/%d spawns %d/%d",
			srep.Tasks, rep.Tasks, srep.Spawns, rep.Spawns)
	}
	if srep.QueueNS <= 0 {
		t.Fatalf("service job reported queue latency %d", srep.QueueNS)
	}
}
