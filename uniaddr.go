// Package uniaddr is a Go reproduction of "Uni-Address Threads:
// Scalable Thread Management for RDMA-Based Work Stealing"
// (Akiyama & Taura, HPDC 2015).
//
// The paper's runtime migrates native threads between distributed-
// memory nodes by keeping every thread's stack at a fixed virtual
// address inside a small "uni-address region" mapped at the same VA in
// every process, so a one-sided RDMA READ of the raw stack bytes is a
// complete migration — no pointer fix-up, no victim CPU involvement,
// and none of iso-address's per-core virtual-memory reservations.
//
// This reproduction runs the scheme on three backends behind one API
// (see Run and WithBackend):
//
//   - sim: a deterministic discrete-event cluster simulator — simulated
//     address spaces, a Tofu-calibrated RDMA fabric with software
//     fetch-and-add servers, THE-protocol deques in pinned simulated
//     memory, and the iso-address baseline for the paper's comparisons.
//     The semantic oracle, and the home of costs, fault injection and
//     observability.
//   - rt: real goroutines on real cores inside one process, same
//     frame/deque/arena machinery, wall-clock time.
//   - dist: one OS process per worker; arenas and deques live in a
//     shared-memory segment mapped at the same base virtual address in
//     every process, so a steal is a genuine one-sided cross-process
//     copy — the paper's uni-address region across real address spaces.
//
// The task model is fork-join with explicit resume points: register a
// task function, keep all live state in frame slots, and return Unwound
// whenever Spawn or Join report that the thread migrated or suspended:
//
//	var fib uniaddr.FuncID
//
//	func init() {
//		fib = uniaddr.Register("fib", func(e *uniaddr.Env) uniaddr.Status {
//			switch e.RP() {
//			case 0:
//				n := e.I64(0)
//				if n < 2 {
//					e.ReturnI64(n)
//					return uniaddr.Done
//				}
//				if !e.Spawn(1, 1, fib, 4*8, func(c *uniaddr.Env) { c.SetI64(0, n-1) }) {
//					return uniaddr.Unwound
//				}
//				fallthrough
//			case 1:
//				// ... spawn fib(n-2), then Join both; see examples/.
//			}
//			panic("unreachable")
//		})
//	}
//
// Run the registered function with Run(fid, localsLen, init, opts...),
// picking a backend with WithBackend; the unified Report carries the
// result and counters whichever backend ran it.
//
// See examples/quickstart for the complete program, internal/workloads
// for the paper's three benchmarks, and internal/harness for the code
// that regenerates every table and figure of the evaluation.
package uniaddr

import (
	"uniaddr/internal/core"
	"uniaddr/internal/rdma"
)

// Re-exported task-model types. These are aliases, so values flow
// freely between the facade and the internal packages.
type (
	// Env is a task function's view of its frame and the runtime.
	Env = core.Env
	// Status is a task function's return value.
	Status = core.Status
	// FuncID identifies a registered task function.
	FuncID = core.FuncID
	// Handle identifies a spawned task for Join.
	Handle = core.Handle
	// Config describes a simulated machine.
	Config = core.Config
	// Machine is a built cluster, ready for one Run.
	Machine = core.Machine
	// Worker is one simulated process (one core).
	Worker = core.Worker
	// WorkerStats are per-worker counters.
	WorkerStats = core.WorkerStats
	// Costs is a CPU cost profile.
	Costs = core.Costs
	// NetParams are the RDMA fabric parameters.
	NetParams = rdma.Params
	// SchemeKind selects uni-address or the iso-address baseline.
	SchemeKind = core.SchemeKind
)

// Task-function statuses.
const (
	// Done means the task function completed.
	Done = core.Done
	// Unwound must be returned when Spawn or Join report migration or
	// suspension.
	Unwound = core.Unwound
)

// Schemes.
const (
	// SchemeUni is the paper's uni-address scheme.
	SchemeUni = core.SchemeUni
	// SchemeIso is the iso-address baseline.
	SchemeIso = core.SchemeIso
)

// Register adds a task function to the global table and returns its id.
// Call from init so every simulated process agrees on ids.
func Register(name string, fn func(*Env) Status) FuncID {
	return core.Register(name, fn)
}

// DefaultConfig returns an FX10-flavoured machine: SPARC64IXfx cost
// profile, Tofu-calibrated fabric with software fetch-and-add (one
// communication server per 15 workers), uni-address scheme.
//
// Prefer Run with options (WithWorkers, WithSeed, WithCosts, WithNet,
// ...) for typical use; DefaultConfig + NewMachine remain the
// full-surface simulator entry point for experiment code that needs
// Config fields the options do not cover (schemes, node topology,
// lifelines, ...).
func DefaultConfig(workers int) Config { return core.DefaultConfig(workers) }

// SPARCCosts is the FX10 SPARC64IXfx cost profile (Table 1/2).
func SPARCCosts() Costs { return core.SPARCCosts() }

// XeonCosts is the Xeon E5-2660 cost profile (Table 1/2).
func XeonCosts() Costs { return core.XeonCosts() }

// DefaultNetParams returns the Tofu-calibrated fabric parameters.
func DefaultNetParams() NetParams { return rdma.DefaultParams() }

// NewMachine builds a simulated cluster from cfg.
//
// Prefer Run for typical use; NewMachine remains the escape hatch for
// programs that need direct Machine access (observability recorders,
// traces, per-worker fabric stats, staged global-heap data).
func NewMachine(cfg Config) (*Machine, error) { return core.NewMachine(cfg) }

// RunConfig is the pre-options entry point: build a simulator machine
// from cfg, run a root task of fid with localsLen bytes of frame locals
// initialised by init, and return the root result together with the
// machine (for stats).
//
// Deprecated: use Run — RunConfig(cfg, ...) is exactly Run(...,
// WithBackend(BackendSim), WithWorkers(cfg.Workers), WithSeed(cfg.Seed))
// for a default cfg, and the unified Report replaces poking at the
// Machine. RunConfig remains so seed-era code keeps compiling.
func RunConfig(cfg Config, fid FuncID, localsLen uint32, init func(*Env)) (uint64, *Machine, error) {
	m, err := core.NewMachine(cfg)
	if err != nil {
		return 0, nil, err
	}
	res, err := m.Run(fid, localsLen, init)
	if err != nil {
		return 0, m, err
	}
	return res, m, nil
}
