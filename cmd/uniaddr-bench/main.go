// uniaddr-bench regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	go run ./cmd/uniaddr-bench -exp all
//	go run ./cmd/uniaddr-bench -exp fig11a -scale large -workers 480,960,1920,3840
//	go run ./cmd/uniaddr-bench -exp fig10
//
// Experiments: fig9, table2, fig10, table4, fig11a, fig11b, fig11c,
// fig11d, iso-vs-uni, sec4, ablate-faa, ablate-stacksize,
// ablate-nodes, ablate-multiworker, chaos, all.
//
// The chaos experiment is the robustness gate: it sweeps fib, NQueens
// and UTS over fault-injection rates (-chaos-rates) on -chaos-workers
// workers and fails unless every run returns the sequential reference
// result, passes the quiescence check and replays bit-identically
// under the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uniaddr/internal/core"
	"uniaddr/internal/harness"
	"uniaddr/internal/rdma"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see doc comment)")
	scale := flag.String("scale", "small", "problem scale: tiny | small | large")
	seed := flag.Uint64("seed", 1, "base simulation seed")
	reps := flag.Int("reps", 3, "repetitions per Fig. 11 point (for 95% CIs)")
	workersFlag := flag.String("workers", "", "comma-separated worker counts for fig11/sec4 (default 60,120,240,480)")
	table4Workers := flag.Int("table4-workers", 60, "worker count for table4")
	csvDir := flag.String("csv", "", "also write data series as CSV files into this directory")
	chaosWorkers := flag.Int("chaos-workers", 8, "worker count for the chaos sweep")
	chaosRates := flag.String("chaos-rates", "", "comma-separated fault rates for chaos (default 0,0.001,0.01,0.05)")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON of a representative faulted chaos run to this file (chaos only; view in Perfetto)")
	obsOut := flag.Bool("obs", false, "print an observability summary of a representative faulted chaos run (chaos only)")
	flag.Parse()

	// Output sinks are validated up front: a bad -csv directory or an
	// unwritable -trace path must fail now, not after a long sweep.
	if *csvDir != "" {
		if err := harness.EnsureWritableDir(*csvDir); err != nil {
			fail(fmt.Errorf("-csv: %w", err))
		}
	}
	if *traceOut != "" && *exp != "chaos" {
		fail(fmt.Errorf("-trace is only supported with -exp chaos"))
	}
	if *obsOut && *exp != "chaos" {
		fail(fmt.Errorf("-obs is only supported with -exp chaos"))
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(fmt.Errorf("-trace: %w", err))
		}
		traceFile = f
	}

	workers := harness.DefaultWorkerCounts
	if *workersFlag != "" {
		workers = nil
		for _, s := range strings.Split(*workersFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fail(fmt.Errorf("bad -workers entry %q", s))
			}
			workers = append(workers, n)
		}
	}

	run := func(name string) {
		out := os.Stdout
		switch name {
		case "fig9":
			pts, err := harness.Fig9(rdma.DefaultParams(), core.SPARCCosts().ClockHz, nil)
			check(err)
			harness.PrintFig9(out, pts)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteFig9CSV(*csvDir, pts) }))
		case "table2":
			rows, err := harness.Table2(5000)
			check(err)
			harness.PrintTable2(out, rows)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteTable2CSV(*csvDir, rows) }))
		case "fig10":
			bd, err := harness.Fig10(core.SchemeUni, 500)
			check(err)
			harness.PrintFig10(out, bd)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteFig10CSV(*csvDir, "fig10", bd) }))
		case "table4":
			rows, err := harness.Table4(*table4Workers, *scale, *seed)
			check(err)
			harness.PrintTable4(out, *table4Workers, rows)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteTable4CSV(*csvDir, rows) }))
		case "fig11a", "fig11b", "fig11c", "fig11d":
			entries := harness.Fig11Benchmarks(*scale)[name]
			var curves []harness.Fig11Curve
			for _, e := range entries {
				pts, err := harness.ScalingSweep(e.Spec, workers, *reps, *seed, nil)
				check(err)
				curves = append(curves, harness.Fig11Curve{Label: e.Label, Points: pts})
			}
			harness.PrintFig11(out, name, curves, core.SPARCCosts().ClockHz)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteFig11CSV(*csvDir, name, curves) }))
		case "iso-vs-uni":
			uni, iso, ratio, err := harness.IsoVsUni(13)
			check(err)
			harness.PrintFig10(out, uni)
			harness.PrintFig10(out, iso)
			harness.PrintIsoVsUni(out, uni, iso, ratio)
		case "sec4":
			pts, err := harness.Sec4Measured([]int{8, 16, 32, 64}, *seed)
			check(err)
			harness.PrintSec4(out, harness.Sec4Paper(), pts)
		case "ablate-faa":
			pts, err := harness.AblateFAA([]int{15, 30, 60, 120}, *seed)
			check(err)
			harness.PrintAblateFAA(out, pts)
		case "ablate-stacksize":
			pts, err := harness.AblateStackSize(nil, 200)
			check(err)
			harness.PrintAblateStackSize(out, pts)
		case "ablate-nodes":
			pts, err := harness.AblateWorkersPerNode(60, []int{1, 5, 15, 30}, *seed)
			check(err)
			harness.PrintAblateWorkersPerNode(out, 60, pts)
		case "ablate-lifelines":
			pts, err := harness.AblateLifelines(30, *seed)
			check(err)
			harness.PrintAblateLifelines(out, 30, pts)
		case "ablate-straggler":
			pts, err := harness.AblateStraggler(30, *seed)
			check(err)
			harness.PrintAblateStraggler(out, 30, pts)
		case "trend":
			pts, err := harness.EfficiencyTrend([]uint64{16, 18, 20, 22}, 15, 8, *seed)
			check(err)
			harness.PrintTrend(out, 15, 8, pts)
		case "ablate-helpfirst":
			pts, err := harness.AblateHelpFirst(30, *seed)
			check(err)
			harness.PrintAblateHelpFirst(out, 30, pts)
		case "ablate-victim":
			pts, err := harness.AblateVictim(30, 0.3, *seed)
			check(err)
			harness.PrintAblateVictim(out, 30, 0.3, pts)
		case "ablate-multiworker":
			pts, err := harness.AblateMultiWorker(24, []int{1, 2, 4}, *seed)
			check(err)
			harness.PrintAblateMultiWorker(out, 24, pts)
		case "chaos":
			rates := harness.DefaultChaosRates
			if *chaosRates != "" {
				rates = nil
				for _, s := range strings.Split(*chaosRates, ",") {
					r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
					if err != nil || r < 0 || r >= 1 {
						fail(fmt.Errorf("bad -chaos-rates entry %q", s))
					}
					rates = append(rates, r)
				}
			}
			var obsv *harness.ChaosObserve
			if traceFile != nil || *obsOut {
				obsv = &harness.ChaosObserve{}
				if traceFile != nil {
					obsv.Trace = traceFile
				}
				if *obsOut {
					obsv.Summary = out
				}
			}
			pts, err := harness.ChaosSweepObserved(*chaosWorkers, harness.ChaosWorkloads(*scale), rates, *seed, obsv)
			check(err)
			harness.PrintChaos(out, *chaosWorkers, pts)
			if traceFile != nil {
				check(traceFile.Close())
				traceFile = nil
				fmt.Fprintf(out, "(Chrome trace written to %s — open in https://ui.perfetto.dev)\n", *traceOut)
			}
		default:
			fail(fmt.Errorf("unknown experiment %q", name))
		}
		fmt.Fprintln(out)
	}

	defer harness.FprintCSVNote(os.Stdout, *csvDir)
	if *exp == "all" {
		for _, name := range []string{
			"fig9", "table2", "fig10", "iso-vs-uni", "table4",
			"fig11a", "fig11b", "fig11c", "fig11d", "trend",
			"sec4", "ablate-faa", "ablate-stacksize", "ablate-nodes", "ablate-victim", "ablate-multiworker", "ablate-helpfirst", "ablate-straggler", "ablate-lifelines",
		} {
			fmt.Printf("==== %s ====\n", name)
			run(name)
		}
		return
	}
	run(*exp)
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "uniaddr-bench:", err)
	os.Exit(1)
}
