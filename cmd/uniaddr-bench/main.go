// uniaddr-bench regenerates the paper's tables and figures on the
// simulated cluster, and measures the real backends — rt (threads) and
// dist (one OS process per worker over shared memory) — on actual
// cores.
//
// Usage:
//
//	go run ./cmd/uniaddr-bench -exp all
//	go run ./cmd/uniaddr-bench -exp fig11a -scale large -workers 480,960,1920,3840
//	go run ./cmd/uniaddr-bench -exp fig10
//	go run ./cmd/uniaddr-bench -backend rt -scale small
//	go run ./cmd/uniaddr-bench -backend rt -exp diff
//	go run ./cmd/uniaddr-bench -backend dist -exp diff
//	go run ./cmd/uniaddr-bench -backend dist -exp bench
//	go run ./cmd/uniaddr-bench -list
//
// Experiments (sim backend): fig9, table2, fig10, table4, fig11a,
// fig11b, fig11c, fig11d, iso-vs-uni, sec4, ablate-faa,
// ablate-stacksize, ablate-nodes, ablate-multiworker, chaos, all.
//
// Experiments (rt backend): bench (wall-clock scaling, written to
// BENCH_rt.json), diff (the sim-vs-rt differential matrix) and
// scalefloor (the 1-vs-8-worker speedup gate; skips on hosts with
// fewer than 8 CPUs).
//
// Experiments (dist backend): bench (multi-process scaling, written to
// BENCH_dist.json) and diff (the sim-vs-dist differential matrix plus
// the SIGKILL crash probe). The dist backend re-execs this binary for
// worker processes; main routes those through dist.MaybeChild.
//
// The chaos experiment is the robustness gate, on every backend:
//
//   - sim: sweeps fib, NQueens and UTS over fabric fault rates
//     (-chaos-rates) and fails unless every run returns the sequential
//     reference result, passes quiescence and replays bit-identically;
//   - rt: the steal-fault matrix — injected claim/copy failures and
//     delays under real threads, every cell ending in the oracle result
//     within its deadline;
//   - dist: the full matrix — steal faults, control-plane socket faults
//     (drop/truncate/delay), concurrent SIGKILLs and the hung-worker
//     heartbeat cell, each ending in the oracle result or a structured
//     typed error within its deadline, never a hang.
//
// -chaos-json writes the verdicts as a machine-readable artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"uniaddr"
	"uniaddr/internal/core"
	"uniaddr/internal/dist"
	"uniaddr/internal/harness"
	"uniaddr/internal/rdma"
	"uniaddr/internal/workloads"
)

// simExperiments is the canonical experiment order for -exp all and
// -list (chaos is opt-in: it is a gate, not a figure).
var simExperiments = []string{
	"fig9", "table2", "fig10", "iso-vs-uni", "table4",
	"fig11a", "fig11b", "fig11c", "fig11d", "trend",
	"sec4", "ablate-faa", "ablate-stacksize", "ablate-nodes", "ablate-victim", "ablate-multiworker", "ablate-helpfirst", "ablate-straggler", "ablate-lifelines",
}

var rtExperiments = []string{"bench", "diff", "chaos", "scalefloor", "service"}

func main() {
	// MUST run before anything else: when this binary was re-exec'd as a
	// dist worker process, MaybeChild takes over and never returns.
	dist.MaybeChild()
	backend := flag.String("backend", "sim", "execution backend: sim (virtual-time simulator) | rt (real goroutines) | dist (one OS process per worker)")
	exp := flag.String("exp", "", "experiment to run (default: all for -backend sim, bench for -backend rt; see -list)")
	scale := flag.String("scale", "small", "problem scale: tiny | small | large | bench (bench: seconds-scale rt/dist workloads)")
	seed := flag.Uint64("seed", 1, "base simulation seed")
	reps := flag.Int("reps", 3, "repetitions per Fig. 11 / rt-bench point")
	workersFlag := flag.String("workers", "", "comma-separated worker counts for fig11/sec4/rt (sim default 60,120,240,480; rt default 1,2,4,8)")
	table4Workers := flag.Int("table4-workers", 60, "worker count for table4")
	csvDir := flag.String("csv", "", "also write data series as CSV files into this directory")
	chaosWorkers := flag.Int("chaos-workers", 8, "worker count for the chaos sweep/matrix")
	chaosRates := flag.String("chaos-rates", "", "comma-separated fault rates for sim chaos (default 0,0.001,0.01,0.05)")
	chaosJSON := flag.String("chaos-json", "", "write the chaos verdicts as JSON to this path (-exp chaos, any backend)")
	short := flag.Bool("short", false, "shrink long experiments (dist chaos: drop the minutes-long kill/hang cells)")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON to this file (-exp run|bench|chaos, any backend; view in Perfetto). The trace's clockDomain field names the timestamp domain: virtual cycles on sim, wall ns on rt/dist")
	obsOut := flag.Bool("obs", false, "print an observability digest of the run (-exp run|bench|chaos, any backend)")
	checkTrace := flag.String("check-trace", "", "validate a Chrome trace file produced by -trace (parses, has clock-domain metadata and steal events), then exit")
	rtJSON := flag.String("rt-json", "BENCH_rt.json", "output path for the rt bench report (-backend rt -exp bench)")
	qps := flag.Float64("qps", 20, "target Poisson arrival rate, jobs/sec (-backend rt -exp service)")
	svcJobs := flag.Int("jobs", 120, "number of job arrivals to generate (-backend rt -exp service)")
	serviceJSON := flag.String("service-json", "BENCH_service.json", "output path for the service load-gen report (-backend rt -exp service)")
	distJSON := flag.String("dist-json", "BENCH_dist.json", "output path for the dist bench report (-backend dist -exp bench)")
	runWorkload := flag.String("workload", "fib", "workload for -exp run (see -list)")
	jsonOut := flag.Bool("json", false, "emit the unified uniaddr.Report as JSON (-exp run, any backend)")
	compare := flag.String("compare", "", "baseline BENCH_rt.json to diff the rt bench against (-backend rt -exp bench); prints a before/after delta table")
	compareJSON := flag.String("compare-json", "", "also write the -compare delta report as JSON to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (view with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile at exit to this file")
	grainFlag := flag.String("grain", "", "sequential cutoff for rt/dist bench runs: a depth, or \"auto\" for demand-adaptive inlining (default: off)")
	stealBatch := flag.Int("batch", 0, "steal-batch override for rt/dist bench runs: 1 forces single-entry steals, n>1 caps the per-round-trip claim (default 0: deque-sized steal-half)")
	tierGroup := flag.Int("tiergroup", 0, "workers per locality block for tiered victim selection on rt/dist (default 0: backend default)")
	list := flag.Bool("list", false, "list available experiments, workloads and backends, then exit")
	flag.Parse()

	tune, err := parseTuning(*grainFlag, *stealBatch, *tierGroup)
	check(err)

	if *list {
		printList(os.Stdout)
		return
	}
	if *checkTrace != "" {
		info, err := harness.CheckTrace(*checkTrace)
		check(err)
		fmt.Printf("trace %s OK: %d events (%d steal-related), clock domain %q\n",
			*checkTrace, info.Events, info.StealEvents, info.Clock)
		return
	}
	stopProfiles := startProfiles(*cpuProfile, *memProfile, *mutexProfile)
	defer stopProfiles()
	// "run" is the one backend-neutral experiment: one workload through
	// the public uniaddr.Run facade, reported as the unified Report.
	if *exp == "run" {
		runFacade(*backend, *runWorkload, parseWorkers(*workersFlag, []int{4})[0], *seed, *jsonOut, *traceOut, *obsOut)
		return
	}
	switch *backend {
	case "sim":
		if *exp == "" {
			*exp = "all"
		}
	case "rt":
		if *exp == "" {
			*exp = "bench"
		}
		if *exp == "chaos" {
			runChaosMatrix(harness.RTChaosBackend(false), harness.RTChaosSchedules(), *chaosWorkers, *seed, *scale, *chaosJSON)
			traceRepresentative("rt", *chaosWorkers, *seed, true, *traceOut, *obsOut)
			return
		}
		if *exp == "service" {
			runServiceBench(*workersFlag, *qps, *svcJobs, *seed, *serviceJSON)
			return
		}
		runRT(*exp, *scale, *seed, *reps, *workersFlag, *rtJSON, *compare, *compareJSON, tune)
		if *exp == "bench" {
			ws := parseWorkers(*workersFlag, defaultRTWorkers())
			traceRepresentative("rt", ws[len(ws)-1], *seed, false, *traceOut, *obsOut)
		}
		return
	case "dist":
		if *exp == "" {
			*exp = "bench"
		}
		if *exp == "chaos" {
			schedules := harness.DistChaosSchedules()
			if *short {
				// Drop the Long (kill/hang) schedules: they pay a
				// multi-second injected-failure run each.
				var kept []harness.ChaosSchedule
				for _, s := range schedules {
					if !s.Long {
						kept = append(kept, s)
					}
				}
				schedules = kept
			}
			runChaosMatrix(harness.DistChaosBackend(), schedules, *chaosWorkers, *seed, *scale, *chaosJSON)
			traceRepresentative("dist", min(*chaosWorkers, 4), *seed, true, *traceOut, *obsOut)
			return
		}
		runDist(*exp, *scale, *seed, *reps, *workersFlag, *distJSON, tune)
		if *exp == "bench" {
			ws := parseWorkers(*workersFlag, []int{2, 4})
			traceRepresentative("dist", ws[len(ws)-1], *seed, false, *traceOut, *obsOut)
		}
		return
	default:
		fail(fmt.Errorf("unknown backend %q (sim | rt | dist); -list shows what exists", *backend))
	}

	// Output sinks are validated up front: a bad -csv directory or an
	// unwritable -trace path must fail now, not after a long sweep.
	if *csvDir != "" {
		if err := harness.EnsureWritableDir(*csvDir); err != nil {
			fail(fmt.Errorf("-csv: %w", err))
		}
	}
	if *traceOut != "" && *exp != "chaos" {
		fail(fmt.Errorf("-trace on the sim backend is only supported with -exp run or -exp chaos, not the figure experiments"))
	}
	if *obsOut && *exp != "chaos" {
		fail(fmt.Errorf("-obs on the sim backend is only supported with -exp run or -exp chaos, not the figure experiments"))
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(fmt.Errorf("-trace: %w", err))
		}
		traceFile = f
	}

	workers := parseWorkers(*workersFlag, harness.DefaultWorkerCounts)

	run := func(name string) {
		out := os.Stdout
		switch name {
		case "fig9":
			pts, err := harness.Fig9(rdma.DefaultParams(), core.SPARCCosts().ClockHz, nil)
			check(err)
			harness.PrintFig9(out, pts)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteFig9CSV(*csvDir, pts) }))
		case "table2":
			rows, err := harness.Table2(5000)
			check(err)
			harness.PrintTable2(out, rows)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteTable2CSV(*csvDir, rows) }))
		case "fig10":
			bd, err := harness.Fig10(core.SchemeUni, 500)
			check(err)
			harness.PrintFig10(out, bd)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteFig10CSV(*csvDir, "fig10", bd) }))
		case "table4":
			rows, err := harness.Table4(*table4Workers, *scale, *seed)
			check(err)
			harness.PrintTable4(out, *table4Workers, rows)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteTable4CSV(*csvDir, rows) }))
		case "fig11a", "fig11b", "fig11c", "fig11d":
			entries := harness.Fig11Benchmarks(*scale)[name]
			var curves []harness.Fig11Curve
			for _, e := range entries {
				pts, err := harness.ScalingSweep(e.Spec, workers, *reps, *seed, nil)
				check(err)
				curves = append(curves, harness.Fig11Curve{Label: e.Label, Points: pts})
			}
			harness.PrintFig11(out, name, curves, core.SPARCCosts().ClockHz)
			check(harness.MaybeCSV(*csvDir, func() error { return harness.WriteFig11CSV(*csvDir, name, curves) }))
		case "iso-vs-uni":
			uni, iso, ratio, err := harness.IsoVsUni(13)
			check(err)
			harness.PrintFig10(out, uni)
			harness.PrintFig10(out, iso)
			harness.PrintIsoVsUni(out, uni, iso, ratio)
		case "sec4":
			pts, err := harness.Sec4Measured([]int{8, 16, 32, 64}, *seed)
			check(err)
			harness.PrintSec4(out, harness.Sec4Paper(), pts)
		case "ablate-faa":
			pts, err := harness.AblateFAA([]int{15, 30, 60, 120}, *seed)
			check(err)
			harness.PrintAblateFAA(out, pts)
		case "ablate-stacksize":
			pts, err := harness.AblateStackSize(nil, 200)
			check(err)
			harness.PrintAblateStackSize(out, pts)
		case "ablate-nodes":
			pts, err := harness.AblateWorkersPerNode(60, []int{1, 5, 15, 30}, *seed)
			check(err)
			harness.PrintAblateWorkersPerNode(out, 60, pts)
		case "ablate-lifelines":
			pts, err := harness.AblateLifelines(30, *seed)
			check(err)
			harness.PrintAblateLifelines(out, 30, pts)
		case "ablate-straggler":
			pts, err := harness.AblateStraggler(30, *seed)
			check(err)
			harness.PrintAblateStraggler(out, 30, pts)
		case "trend":
			pts, err := harness.EfficiencyTrend([]uint64{16, 18, 20, 22}, 15, 8, *seed)
			check(err)
			harness.PrintTrend(out, 15, 8, pts)
		case "ablate-helpfirst":
			pts, err := harness.AblateHelpFirst(30, *seed)
			check(err)
			harness.PrintAblateHelpFirst(out, 30, pts)
		case "ablate-victim":
			pts, err := harness.AblateVictim(30, 0.3, *seed)
			check(err)
			harness.PrintAblateVictim(out, 30, 0.3, pts)
		case "ablate-multiworker":
			pts, err := harness.AblateMultiWorker(24, []int{1, 2, 4}, *seed)
			check(err)
			harness.PrintAblateMultiWorker(out, 24, pts)
		case "chaos":
			rates := harness.DefaultChaosRates
			if *chaosRates != "" {
				rates = nil
				for _, s := range strings.Split(*chaosRates, ",") {
					r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
					if err != nil || r < 0 || r >= 1 {
						fail(fmt.Errorf("bad -chaos-rates entry %q", s))
					}
					rates = append(rates, r)
				}
			}
			var obsv *harness.ChaosObserve
			if traceFile != nil || *obsOut {
				obsv = &harness.ChaosObserve{}
				if traceFile != nil {
					obsv.Trace = traceFile
				}
				if *obsOut {
					obsv.Summary = out
				}
			}
			pts, err := harness.ChaosSweepObserved(*chaosWorkers, harness.ChaosWorkloads(*scale), rates, *seed, obsv)
			check(err)
			harness.PrintChaos(out, *chaosWorkers, pts)
			if *chaosJSON != "" {
				check(writeJSONFile(*chaosJSON, pts))
				fmt.Fprintf(out, "(chaos points written to %s)\n", *chaosJSON)
			}
			if traceFile != nil {
				check(traceFile.Close())
				traceFile = nil
				fmt.Fprintf(out, "(Chrome trace written to %s — open in https://ui.perfetto.dev)\n", *traceOut)
			}
		default:
			fail(fmt.Errorf("unknown experiment %q for the sim backend; -list shows what exists", name))
		}
		fmt.Fprintln(out)
	}

	defer harness.FprintCSVNote(os.Stdout, *csvDir)
	if *exp == "all" {
		for _, name := range simExperiments {
			fmt.Printf("==== %s ====\n", name)
			run(name)
		}
		return
	}
	run(*exp)
}

// runChaosMatrix executes the backend-generalised chaos matrix (-exp
// chaos on rt/dist): every (schedule × workload × seed) cell must end,
// within its deadline, in the oracle result or a structured typed
// error. Exits non-zero on any failed cell — this is a gate, not a
// figure.
func runChaosMatrix(b harness.ChaosBackend, schedules []harness.ChaosSchedule, workers int, seed uint64, scale, chaosJSON string) {
	seeds := []uint64{seed, seed + 1, seed + 2}
	cells, failed := harness.RunChaosMatrix(b, workers, seeds, schedules, scale)
	harness.PrintChaosMatrix(os.Stdout, cells, failed)
	if chaosJSON != "" {
		check(writeJSONFile(chaosJSON, cells))
		fmt.Printf("(chaos verdicts written to %s)\n", chaosJSON)
	}
	if failed > 0 {
		fail(fmt.Errorf("chaos matrix on %s: %d cells failed", b.Name, failed))
	}
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runRT executes the real-parallelism experiments: the wall-clock
// scaling bench (with its BENCH_rt.json artifact, optionally diffed
// against a committed baseline), the sim-vs-rt differential matrix, or
// the scalefloor gate.
func runRT(exp, scale string, seed uint64, reps int, workersFlag, rtJSON, compare, compareJSON string, tune harness.BenchTuning) {
	workers := parseWorkers(workersFlag, defaultRTWorkers())
	out := os.Stdout
	switch exp {
	case "bench":
		// A bad baseline path must fail before the sweep, not after it.
		var baseline harness.RTBenchReport
		if compare != "" {
			var err error
			baseline, err = harness.ReadRTBenchJSON(compare)
			check(err)
		}
		wls, err := harness.RTBenchWorkloads(scale)
		check(err)
		rep, err := harness.RunRTBench(wls, workers, reps, seed, false, tune)
		check(err)
		harness.PrintRTBench(out, rep)
		f, err := os.Create(rtJSON)
		check(err)
		check(harness.WriteRTBenchJSON(f, rep))
		check(f.Close())
		fmt.Fprintf(out, "(machine-readable report written to %s)\n", rtJSON)
		if compare != "" {
			cmp := harness.CompareRTBench(baseline, rep)
			fmt.Fprintln(out)
			harness.PrintRTBenchCompare(out, cmp)
			if compareJSON != "" {
				cf, err := os.Create(compareJSON)
				check(err)
				check(harness.WriteRTBenchCompareJSON(cf, cmp))
				check(cf.Close())
				fmt.Fprintf(out, "(delta report written to %s)\n", compareJSON)
			}
		}
	case "diff":
		seeds := []uint64{seed, seed + 1, seed + 2}
		rep, err := harness.RunDifferential(harness.DiffWorkloads(), workers, seeds, false)
		check(err)
		printDiff(out, rep)
	case "scalefloor":
		runScaleFloor(out, seed, reps, tune)
	default:
		fail(fmt.Errorf("unknown experiment %q for the rt backend; -list shows what exists", exp))
	}
}

// runServiceBench is -backend rt -exp service: the open-loop Poisson
// load generator against one persistent worker pool. It writes
// BENCH_service.json and exits non-zero if any per-job report diverged
// from its sequential oracle or a worker exited mid-run — the two
// invariants the persistent-pool design promises.
func runServiceBench(workersFlag string, qps float64, jobs int, seed uint64, serviceJSON string) {
	workers := parseWorkers(workersFlag, []int{4})[0]
	out := os.Stdout
	rep, err := harness.RunServiceBench(harness.ServiceBenchConfig{
		Workers: workers, QPS: qps, Jobs: jobs, Seed: seed,
	})
	check(err)
	harness.PrintServiceBench(out, rep)
	f, err := os.Create(serviceJSON)
	check(err)
	check(harness.WriteServiceBenchJSON(f, rep))
	check(f.Close())
	fmt.Fprintf(out, "(machine-readable report written to %s)\n", serviceJSON)
	if rep.OracleMismatches > 0 {
		fail(fmt.Errorf("%d per-job reports diverged from their sequential oracle", rep.OracleMismatches))
	}
	if rep.WorkersExitedMidRun != 0 {
		fail(fmt.Errorf("%d workers exited while jobs were still being served", rep.WorkersExitedMidRun))
	}
}

// scaleFloorSpeedup is the acceptance floor for -exp scalefloor: every
// seconds-scale bench workload must run at least this much faster on 8
// workers than on 1. The floor is deliberately conservative (ideal is
// 8x) so scheduler noise on shared CI runners does not flake the gate.
const scaleFloorSpeedup = 4.0

// runScaleFloor is the scaling acceptance gate: the seconds-scale
// "bench" workloads at 1 and 8 workers, each workload required to hit
// scaleFloorSpeedup. A speedup claim measured on fewer cores than
// workers is meaningless, so on underprovisioned hosts the gate prints
// what it would have checked and exits 0 — the HONEST outcome, also
// what keeps laptop/dev-container runs green. CI runs it on runners
// with NumCPU >= 8 where it actually bites.
func runScaleFloor(out *os.File, seed uint64, reps int, tune harness.BenchTuning) {
	if runtime.NumCPU() < 8 {
		fmt.Fprintf(out, "scalefloor: SKIPPED — NumCPU=%d < 8 workers; a speedup measured on an underprovisioned host says nothing about scaling\n", runtime.NumCPU())
		return
	}
	wls, err := harness.RTBenchWorkloads("bench")
	check(err)
	rep, err := harness.RunRTBench(wls, []int{1, 8}, reps, seed, false, tune)
	check(err)
	wall := map[string]map[int]int64{}
	for _, row := range rep.Rows {
		if wall[row.Workload] == nil {
			wall[row.Workload] = map[int]int64{}
		}
		wall[row.Workload][row.Workers] = row.WallNS
	}
	failed := 0
	for _, wl := range wls {
		w1, w8 := wall[wl.Name][1], wall[wl.Name][8]
		if w1 == 0 || w8 == 0 {
			fail(fmt.Errorf("scalefloor: missing timings for %s", wl.Name))
		}
		speedup := float64(w1) / float64(w8)
		verdict := "ok"
		if speedup < scaleFloorSpeedup {
			verdict = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "scalefloor %-10s 1w=%8.2fms 8w=%8.2fms speedup=%5.2fx (floor %.1fx) %s\n",
			wl.Name, float64(w1)/1e6, float64(w8)/1e6, speedup, scaleFloorSpeedup, verdict)
	}
	if failed > 0 {
		fail(fmt.Errorf("scalefloor: %d of %d workloads below the %.1fx floor", failed, len(wls), scaleFloorSpeedup))
	}
	fmt.Fprintf(out, "scalefloor: all %d workloads at or above %.1fx\n", len(wls), scaleFloorSpeedup)
}

// runDist executes the multi-process experiments: the scaling bench
// (BENCH_dist.json) or the sim-vs-dist differential matrix followed by
// the SIGKILL crash probe — together, the acceptance gate for the dist
// backend.
func runDist(exp, scale string, seed uint64, reps int, workersFlag, distJSON string, tune harness.BenchTuning) {
	workers := parseWorkers(workersFlag, []int{2, 4})
	out := os.Stdout
	switch exp {
	case "bench":
		wls, err := harness.RTBenchWorkloads(scale)
		check(err)
		rep, err := harness.RunDistBench(wls, workers, reps, seed, tune)
		check(err)
		harness.PrintRTBench(out, rep)
		f, err := os.Create(distJSON)
		check(err)
		check(harness.WriteRTBenchJSON(f, rep))
		check(f.Close())
		fmt.Fprintf(out, "(machine-readable report written to %s)\n", distJSON)
	case "diff":
		seeds := []uint64{seed, seed + 1, seed + 2}
		rep, err := harness.RunDifferentialBackend(harness.DistDiffBackend(), harness.DiffWorkloads(), workers, seeds)
		check(err)
		printDiff(out, rep)
		fmt.Fprintln(out, "crash probe: SIGKILL a worker process mid-run...")
		check(harness.DistCrashProbe(3, seed))
		fmt.Fprintln(out, "crash probe: structured WorkerCrashError reported, no hang")
	default:
		fail(fmt.Errorf("unknown experiment %q for the dist backend; -list shows what exists", exp))
	}
}

// runFacade executes one catalog workload through the public
// backend-neutral facade (uniaddr.Run) and prints the unified
// uniaddr.Report — as JSON with -json, human-readable otherwise.
// traceOut/obsOut attach the observability recorder and export the run
// through the one unified path every backend shares.
func runFacade(backend, workload string, workers int, seed uint64, jsonOut bool, traceOut string, obsOut bool) {
	var spec workloads.Spec
	found := false
	for _, wl := range runCatalog() {
		if wl.Name == workload {
			spec, found = wl.Spec, true
			break
		}
	}
	if !found {
		fail(fmt.Errorf("unknown workload %q for -exp run; -list shows the catalog", workload))
	}
	if spec.Setup != nil {
		fail(fmt.Errorf("workload %q needs machine staging, which the facade Run does not cover; use the sim experiments", workload))
	}
	opts := []uniaddr.Option{uniaddr.WithBackend(backend), uniaddr.WithWorkers(workers), uniaddr.WithSeed(seed)}
	obsOpts, finishTrace := obsOptions(traceOut, obsOut)
	opts = append(opts, obsOpts...)
	rep, err := uniaddr.Run(spec.Fid, spec.Locals, spec.Init, opts...)
	check(err)
	if spec.Expected != 0 && rep.Root != spec.Expected {
		fail(fmt.Errorf("%s on %s: result %d, want %d", workload, backend, rep.Root, spec.Expected))
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
		finishTrace()
		return
	}
	fmt.Printf("%s on %s: result=%d workers=%d tasks=%d steals=%d/%d bytes-stolen=%d\n",
		workload, rep.Backend, rep.Root, rep.Workers, rep.Tasks,
		rep.StealsOK, rep.StealAttempts, rep.BytesStolen)
	if rep.Backend == uniaddr.BackendSim {
		fmt.Printf("virtual time: %d cycles (%.6f s)\n", rep.VirtualCycles, rep.VirtualSeconds)
	} else {
		fmt.Printf("wall time: %.3f ms\n", float64(rep.WallNS)/1e6)
	}
	if obsOut {
		printObsDigest(os.Stdout, rep.Obs)
	}
	finishTrace()
}

// runCatalog is the -exp run workload catalog: the differential set
// plus deeper variants that keep every worker busy long enough to
// exercise real stealing — the interesting case under -trace (the
// differential-sized specs can finish on one worker before a peer ever
// probes, especially on dist where children pay process startup).
func runCatalog() []harness.DiffWorkload {
	return append(harness.DiffWorkloads(),
		harness.DiffWorkload{Name: "fib-deep", Spec: workloads.Fib(24, 500)},
		harness.DiffWorkload{Name: "nqueens-deep", Spec: workloads.NQueens(8, 50)},
	)
}

// obsOptions turns -trace/-obs into facade options. The returned
// finish func closes the trace file and prints where it went; call it
// after the run.
func obsOptions(traceOut string, obsOut bool) ([]uniaddr.Option, func()) {
	var opts []uniaddr.Option
	finish := func() {}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		check(err)
		opts = append(opts, uniaddr.WithTrace(f))
		finish = func() {
			check(f.Close())
			fmt.Printf("(Chrome trace written to %s — open in https://ui.perfetto.dev)\n", traceOut)
		}
	}
	if obsOut {
		opts = append(opts, uniaddr.WithObs(true))
	}
	return opts, finish
}

// printObsDigest renders the Report's observability block.
func printObsDigest(out *os.File, o *uniaddr.ObsReport) {
	if o == nil {
		fmt.Fprintln(out, "obs: no data recorded")
		return
	}
	fmt.Fprintf(out, "obs: %d events recorded (%s)", o.Events, o.Clock)
	if o.Dropped > 0 {
		fmt.Fprintf(out, ", %d dropped by full rings", o.Dropped)
	}
	fmt.Fprintln(out)
	if len(o.DroppedPerWorker) > 0 {
		fmt.Fprintf(out, "  dropped per worker:")
		for rank, d := range o.DroppedPerWorker {
			if d > 0 {
				fmt.Fprintf(out, " w%d:%d", rank, d)
			}
		}
		fmt.Fprintln(out)
	}
	for _, h := range o.Hists {
		fmt.Fprintf(out, "  %-18s count=%-8d mean=%-10.1f p50=%-8d p95=%-8d p99=%-8d max=%d\n",
			h.Name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
}

// traceRepresentative runs ONE representative run through the facade
// with the recorder on and exports it — the trace/summary companion to
// the bench and chaos experiments on the real backends (the sweeps
// themselves stay unobserved so recording never skews their numbers).
// faulted additionally injects the steal-fault knobs so the trace shows
// the resilient-steal retry/backoff/blacklist ladder. No-op when
// neither -trace nor -obs was given.
func traceRepresentative(backend string, workers int, seed uint64, faulted bool, traceOut string, obsOut bool) {
	if traceOut == "" && !obsOut {
		return
	}
	spec := workloads.Fib(24, 500)
	opts := []uniaddr.Option{uniaddr.WithBackend(backend), uniaddr.WithWorkers(workers), uniaddr.WithSeed(seed)}
	if faulted {
		opts = append(opts, uniaddr.WithFault(uniaddr.FaultConfig{
			Seed: seed, StealClaimFailProb: 0.05, StealCopyFailProb: 0.02,
		}))
	}
	obsOpts, finishTrace := obsOptions(traceOut, obsOut)
	opts = append(opts, obsOpts...)
	fmt.Printf("\ntracing one representative %s run (fib, %d workers, faults=%v)...\n", backend, workers, faulted)
	rep, err := uniaddr.Run(spec.Fid, spec.Locals, spec.Init, opts...)
	check(err)
	if rep.Root != spec.Expected {
		fail(fmt.Errorf("representative traced run: result %d, want %d", rep.Root, spec.Expected))
	}
	if obsOut {
		printObsDigest(os.Stdout, rep.Obs)
	}
	finishTrace()
}

// printDiff renders a differential report and exits non-zero on any
// mismatch — shared by the rt and dist diff experiments.
func printDiff(out *os.File, rep harness.DiffReport) {
	for _, row := range rep.Rows {
		switch {
		case row.Skipped:
			fmt.Fprintf(out, "SKIP  %-14s %s\n", row.Workload, row.SkipReason)
		case row.Match:
			fmt.Fprintf(out, "OK    %-14s workers=%-3d seed=%-3d result=%d\n", row.Workload, row.Workers, row.Seed, row.GotResult)
		default:
			fmt.Fprintf(out, "FAIL  %-14s workers=%-3d seed=%-3d sim=%d %s=%d\n", row.Workload, row.Workers, row.Seed, row.SimResult, rep.Backend, row.GotResult)
		}
	}
	fmt.Fprintf(out, "%d compared, %d mismatches, %d skipped\n", rep.Compared, rep.Mismatches, rep.Skipped)
	if rep.Mismatches > 0 {
		fail(fmt.Errorf("differential matrix found %d sim-vs-%s mismatches", rep.Mismatches, rep.Backend))
	}
}

// defaultRTWorkers picks worker counts that make sense on this machine:
// powers of two up to GOMAXPROCS (always at least {1, 2}).
func defaultRTWorkers() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for n := 2; n <= max && n <= 8; n *= 2 {
		counts = append(counts, n)
	}
	if len(counts) == 1 {
		counts = append(counts, 2)
	}
	return counts
}

// parseTuning assembles the rt/dist scaling knobs from their flags.
// -grain accepts a plain depth or "auto" (demand-adaptive: inline only
// while the local deque is deep enough that no thief is starved).
func parseTuning(grain string, batch, tierGroup int) (harness.BenchTuning, error) {
	tune := harness.BenchTuning{StealBatch: batch, TierGroup: tierGroup}
	switch grain {
	case "":
	case "auto":
		tune.Grain = uniaddr.GrainAuto
	default:
		g, err := strconv.ParseUint(grain, 10, 64)
		if err != nil || g == 0 {
			return tune, fmt.Errorf("bad -grain %q: want a positive depth or \"auto\"", grain)
		}
		tune.Grain = g
	}
	if batch < 0 {
		return tune, fmt.Errorf("bad -batch %d: want 0 (steal-half) or a positive cap", batch)
	}
	if tierGroup < 0 {
		return tune, fmt.Errorf("bad -tiergroup %d: want 0 (default) or a positive block width", tierGroup)
	}
	return tune, nil
}

func parseWorkers(flagValue string, def []int) []int {
	if flagValue == "" {
		return def
	}
	var workers []int
	for _, s := range strings.Split(flagValue, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad -workers entry %q", s))
		}
		workers = append(workers, n)
	}
	return workers
}

// printList enumerates everything -exp, -backend and the workload
// catalogs accept, so an unknown name is a browsing problem, not a
// guessing game.
func printList(out *os.File) {
	fmt.Fprintln(out, "backends:")
	fmt.Fprintln(out, "  sim  deterministic virtual-time simulator (the semantic oracle)")
	fmt.Fprintln(out, "  rt   real goroutines on real cores, wall-clock throughput")
	fmt.Fprintln(out, "  dist one OS process per worker over a shared-memory segment")
	fmt.Fprintln(out, "\nexperiments (-backend sim):")
	names := append([]string{}, simExperiments...)
	names = append(names, "chaos", "all")
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(out, "  %s\n", n)
	}
	fmt.Fprintln(out, "\nexperiments (-backend rt):")
	fmt.Fprintln(out, "  bench      wall-clock scaling sweep; writes BENCH_rt.json")
	fmt.Fprintln(out, "  diff       sim-vs-rt differential matrix (root results must agree)")
	fmt.Fprintln(out, "  chaos      steal-fault matrix: injected claim/copy failures + delays under real threads")
	fmt.Fprintln(out, "  scalefloor seconds-scale bench at 1 vs 8 workers; fails under a 4x speedup floor (skips on <8 CPUs)")
	fmt.Fprintln(out, "  service    open-loop Poisson load-gen (-qps, -jobs) against one persistent worker pool;")
	fmt.Fprintln(out, "             oracle-checks every per-job report, writes BENCH_service.json with latency percentiles")
	fmt.Fprintln(out, "\nexperiments (-backend dist):")
	fmt.Fprintln(out, "  bench  multi-process scaling sweep; writes BENCH_dist.json")
	fmt.Fprintln(out, "  diff   sim-vs-dist differential matrix + SIGKILL crash probe")
	fmt.Fprintln(out, "  chaos  full fault matrix: steal + control-plane faults, SIGKILLs, hung-worker heartbeat cell")
	fmt.Fprintln(out, "\nexperiments (any backend):")
	fmt.Fprintln(out, "  run    one workload via the public uniaddr.Run facade; -json emits the unified Report")
	fmt.Fprintln(out, "\nobservability (-obs digest, -trace Chrome/Perfetto trace; -check-trace validates a trace file):")
	fmt.Fprintln(out, "  sim   virtual-cycles clock; event rings, task lineage, latency histograms  (run, chaos)")
	fmt.Fprintln(out, "  rt    wall-ns clock; lock-free per-worker rings, steal/park/copy histograms (run, bench, chaos)")
	fmt.Fprintln(out, "  dist  wall-ns clock; segment-hosted per-rank rings + heartbeat/control-plane")
	fmt.Fprintln(out, "        events, harvested by the parent even after a worker crash             (run, bench, chaos)")
	fmt.Fprintln(out, "  sim-only knobs (WithCosts, WithNet, fabric fault rates) stay rejected on rt/dist")
	fmt.Fprintln(out, "\nworkloads (differential catalog; *-deep are -exp run extras sized to show stealing under -trace):")
	for _, wl := range runCatalog() {
		if reason := harness.RTSkipReason(wl.Spec); reason != "" {
			fmt.Fprintf(out, "  %-14s sim-only: %s\n", wl.Name, reason)
		} else {
			fmt.Fprintf(out, "  %-14s sim + rt\n", wl.Name)
		}
	}
	fmt.Fprintln(out, "\nscales: tiny | small | large | bench (bench: rt/dist suites sized to run seconds, for real scaling numbers)")
	fmt.Fprintln(out, "\nscaling knobs (rt/dist bench + scalefloor): -grain <depth>|auto, -batch <n>, -tiergroup <n>")
}

// startProfiles arms the requested pprof outputs and returns the
// function that flushes them. CPU profiling starts immediately;
// allocation and mutex profiles are snapshotted at exit (mutex
// profiling is enabled now so the run is actually sampled).
func startProfiles(cpu, mem, mutex string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		check(err)
		check(pprof.StartCPUProfile(f))
		cpuFile = f
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			check(cpuFile.Close())
		}
		if mem != "" {
			f, err := os.Create(mem)
			check(err)
			runtime.GC() // materialise the final live-heap picture
			check(pprof.Lookup("allocs").WriteTo(f, 0))
			check(f.Close())
		}
		if mutex != "" {
			f, err := os.Create(mutex)
			check(err)
			check(pprof.Lookup("mutex").WriteTo(f, 0))
			check(f.Close())
		}
	}
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "uniaddr-bench:", err)
	os.Exit(1)
}
