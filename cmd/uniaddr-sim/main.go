// uniaddr-sim runs a single workload on the simulated uni-address
// cluster with full control over the machine, and prints a complete
// post-mortem: aggregate and per-worker statistics, the steal
// breakdown, memory accounting, and (optionally) an execution-timeline
// Gantt chart.
//
// Examples:
//
//	go run ./cmd/uniaddr-sim -workload btc -depth 16 -workers 60
//	go run ./cmd/uniaddr-sim -workload uts -depth 12 -workers 30 -trace
//	go run ./cmd/uniaddr-sim -workload nqueens -n 10 -scheme iso
//	go run ./cmd/uniaddr-sim -workload fib -n 20 -slots 2 -per-worker
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr/internal/core"
	"uniaddr/internal/harness"
	"uniaddr/internal/obs"
	"uniaddr/internal/workloads"
)

func main() {
	workload := flag.String("workload", "btc", "btc | btc2 | uts | uts-binomial | nqueens | fib | pingpong | globalsum | mergesort")
	workers := flag.Int("workers", 30, "worker processes")
	perNode := flag.Int("per-node", 15, "workers per node")
	depth := flag.Uint64("depth", 14, "tree depth (btc, btc2, uts)")
	n := flag.Uint64("n", 10, "problem size (nqueens board, fib argument)")
	work := flag.Uint64("work", 0, "simulated cycles of computation per task/node")
	seed := flag.Uint64("seed", 1, "simulation seed (workload seed for uts)")
	schemeFlag := flag.String("scheme", "uni", "uni | iso")
	victimFlag := flag.String("victim", "random", "random | local-first | last-success")
	slots := flag.Int("slots", 1, "workers per address space (§5.1 ablation)")
	hwFAA := flag.Bool("hw-faa", false, "hardware remote fetch-and-add")
	intraNode := flag.Float64("intra-node", 1.0, "intra-node latency factor (<1 = hierarchical fabric)")
	xeon := flag.Bool("xeon", false, "use the Xeon E5-2660 cost profile")
	helpFirst := flag.Bool("help-first", false, "tied-tasks (help-first) scheduling instead of the paper's work-first")
	lifelines := flag.Bool("lifelines", false, "lifeline-based load balancing instead of pure random stealing")
	slowEvery := flag.Int("slow-every", 0, "make every k-th worker a straggler (0 = off)")
	slowFactor := flag.Float64("slow-factor", 4, "straggler CPU slowdown factor")
	doTrace := flag.Bool("trace", false, "record and print the execution timeline")
	ganttWidth := flag.Int("gantt-width", 100, "timeline width in characters")
	perWorker := flag.Bool("per-worker", false, "print the per-worker table")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
	doObs := flag.Bool("obs", false, "record observability events and print the text summary")
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON to this file (implies -obs recording; view in Perfetto)")
	flag.Parse()

	// The export target must be writable before the run, not after.
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(fmt.Errorf("-trace-out: %w", err))
		}
		traceFile = f
	}

	var spec workloads.Spec
	switch *workload {
	case "btc":
		spec = workloads.BTC(*depth, 1, *work)
	case "btc2":
		spec = workloads.BTC(*depth, 2, *work)
	case "uts":
		spec = workloads.UTS(*seed, *depth, workloads.DefaultUTSB0, *work)
	case "nqueens":
		spec = workloads.NQueens(*n, *work)
	case "fib":
		spec = workloads.Fib(*n, *work)
	case "pingpong":
		spec = workloads.PingPong(200, 120_000, workloads.PingPongStackBytes)
	case "globalsum":
		spec = workloads.GlobalSum(*n*1000, 64, *workers)
	case "mergesort":
		spec = workloads.MergeSort(*n*1000, 64, *workers)
	case "uts-binomial":
		spec = workloads.UTSBinomial(*seed, 256, 4, 0.22, *work)
	default:
		fail(fmt.Errorf("unknown workload %q", *workload))
	}

	cfg := core.DefaultConfig(*workers)
	cfg.WorkersPerNode = *perNode
	cfg.Seed = *seed
	cfg.SlotsPerProcess = *slots
	cfg.Net.HardwareFAA = *hwFAA
	cfg.Net.IntraNodeFactor = *intraNode
	cfg.HelpFirst = *helpFirst
	cfg.Lifelines = *lifelines
	cfg.SlowWorkerEvery = *slowEvery
	cfg.SlowWorkerFactor = *slowFactor
	cfg.Trace = *doTrace
	cfg.Obs = *doObs || traceFile != nil
	if *xeon {
		cfg.Costs = core.XeonCosts()
	}
	switch *schemeFlag {
	case "uni":
	case "iso":
		cfg.Scheme = core.SchemeIso
	default:
		fail(fmt.Errorf("unknown scheme %q", *schemeFlag))
	}
	switch *victimFlag {
	case "random":
	case "local-first":
		cfg.Victim = core.VictimLocalFirst
	case "last-success":
		cfg.Victim = core.VictimLastSuccess
	default:
		fail(fmt.Errorf("unknown victim policy %q", *victimFlag))
	}

	m, res, err := spec.Run(cfg)
	if err != nil {
		fail(err)
	}
	funcName := func(id uint32) string { return core.FuncName(core.FuncID(id)) }
	if traceFile != nil {
		opts := &obs.ChromeOpts{FuncName: funcName, Label: spec.Name}
		if err := obs.WriteChromeTrace(traceFile, m.Obs(), opts); err != nil {
			fail(fmt.Errorf("-trace-out: %w", err))
		}
		if err := traceFile.Close(); err != nil {
			fail(fmt.Errorf("-trace-out: %w", err))
		}
	}
	status := "validated against sequential reference"
	if res != spec.Expected {
		status = fmt.Sprintf("VALIDATION FAILED (got %d, want %d)", res, spec.Expected)
	}
	if *jsonOut {
		if err := harness.WriteJSONReport(os.Stdout, harness.BuildRunReport(m, spec.Items(res))); err != nil {
			fail(err)
		}
		if res != spec.Expected {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s: result %d — %s\n", spec.Name, res, status)
	harness.ReportRun(os.Stdout, m, spec.Items(res))
	if *perWorker {
		fmt.Println()
		harness.ReportWorkers(os.Stdout, m)
	}
	if tr := m.Tracer(); tr != nil {
		fmt.Println()
		tr.RenderGantt(os.Stdout, *ganttWidth)
	}
	if *doObs {
		fmt.Println()
		obs.WriteSummary(os.Stdout, m.Obs(), funcName)
	}
	if *traceOut != "" {
		fmt.Printf("(Chrome trace written to %s — open in https://ui.perfetto.dev)\n", *traceOut)
	}
	if res != spec.Expected {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "uniaddr-sim:", err)
	os.Exit(1)
}
