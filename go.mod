module uniaddr

go 1.22
